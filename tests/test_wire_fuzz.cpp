// Malformed-frame fuzz corpus (DESIGN.md §10).
//
// Property under test: no byte sequence fed to the wire decoders may crash,
// abort, or invoke UB — malformed input always comes back as a WireError.
// CI runs this binary under ASan+UBSan, so an out-of-bounds read or
// overflow inside a decoder fails the suite even when it happens to return
// the right error code.
//
// The corpus is generated, not stored: every valid body encoding is
// truncated at every prefix length, struck with single-byte corruption at
// every offset, and showered with seeded random mutations. Frame-level
// attacks (bad magic/version/type, reserved flags, oversized length) are
// pinned to their specific error codes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <random>
#include <span>
#include <vector>

#include "gossip/gossip_node.hpp"
#include "paxos/message.hpp"
#include "raft/message.hpp"
#include "wire/codec.hpp"
#include "wire/datagram.hpp"
#include "wire/frame.hpp"

namespace gossipc {
namespace {

using wire::WireError;

std::span<const std::uint8_t> as_span(const std::vector<std::uint8_t>& v) {
    return std::span<const std::uint8_t>(v.data(), v.size());
}

/// One valid encoding of every body type — the seeds the corpus mutates.
std::vector<std::vector<std::uint8_t>> corpus_seeds() {
    std::vector<std::vector<std::uint8_t>> seeds;
    auto add = [&seeds](const MessageBody& body) {
        std::vector<std::uint8_t> bytes = wire::encode_body(body);
        EXPECT_FALSE(bytes.empty());
        seeds.push_back(std::move(bytes));
    };

    const Value value{ValueId{3, 17}, 1024, {}};
    // A composite (coordinator batch, DESIGN.md §14): mutations of its u16
    // component count and of the component triples join the corpus.
    const Value batch = make_batch_value(ValueId{-1, 5}, {value, Value{ValueId{4, 18}, 512, {}}});
    add(ClientValueMsg(3, value, 2, 0, true));
    add(Phase1aMsg(4, 7, 123));
    add(Phase1bMsg(2, 7, 1,
                   {AcceptedEntry{10, 1, value}, AcceptedEntry{11, 2, batch}}));
    add(Phase2aMsg(0, 42, 3, value, 1));
    add(Phase2aMsg(0, 43, 3, batch, 1));
    add(DecisionMsg(1, 43, batch.id, batch.digest(), batch, 1));
    add(Phase2bMsg(5, 42, 3, ValueId{2, 8}, 0xfeedfaceULL, 1));
    add(Phase2bAggregateMsg(9, 42, 3, ValueId{2, 8}, 0xfeedfaceULL, {0, 1, 2, 3, 4}, 2));
    add(DecisionMsg(0, 42, ValueId{2, 8}, 0xfeedfaceULL, value, 1));
    add(LearnRequestMsg(6, 42, 3, 1));
    add(HeartbeatMsg(7, 9, 42));
    add(HeartbeatMsg(7, 10, std::vector<InstanceId>{42, 1, 17}));  // multi-group
    // A cross-group batch (DESIGN.md §15): mutations of its verb tag, entry
    // count, and nested bodies join the corpus.
    {
        std::vector<PaxosMessagePtr> entries;
        for (GroupId g = 0; g < 3; ++g) {
            auto e = std::make_shared<Phase2bMsg>(5, 42, 3, ValueId{2, 8},
                                                  0xfeedfaceULL, 1);
            e->set_group(g);
            entries.push_back(std::move(e));
        }
        add(GroupBatchMsg(5, PaxosMsgType::Phase2b, std::move(entries)));
    }
    add(ClientForwardMsg(3, value, 2));
    add(AppendMsg(0, 2, 42, value));
    add(AckMsg(4, 2, 42, 0xabcdef01ULL));
    add(AckAggregateMsg(5, 2, 42, 0xabcdef01ULL, {0, 1, 2}));
    add(CommitMsg(0, 2, 42, 0xabcdef01ULL));
    add(PullDigest({1, 2, 3}));

    GossipAppMessage app;
    auto payload = std::make_shared<Phase2bMsg>(5, 42, 3, ValueId{2, 8}, 0xfeedfaceULL, 1);
    app.id = payload->unique_key();
    app.origin = 5;
    app.payload = payload;
    app.hops = 3;
    add(GossipEnvelope(app));
    return seeds;
}

/// The decode call the whole file revolves around: any result is fine as
/// long as it is internally consistent and nothing crashed on the way.
void must_not_crash(std::span<const std::uint8_t> data) {
    const wire::DecodedBody d = wire::decode_body(data);
    if (d.ok()) {
        EXPECT_NE(d.body, nullptr);
    } else {
        EXPECT_EQ(d.body, nullptr);
    }
}

TEST(WireFuzz, EmptyInput) {
    const wire::DecodedBody d = wire::decode_body({});
    EXPECT_EQ(d.error, WireError::Truncated);
}

TEST(WireFuzz, EveryPrefixOfEveryBodyIsRejectedCleanly) {
    for (const auto& seed : corpus_seeds()) {
        for (std::size_t len = 0; len < seed.size(); ++len) {
            const std::span<const std::uint8_t> prefix(seed.data(), len);
            const wire::DecodedBody d = wire::decode_body(prefix);
            EXPECT_FALSE(d.ok()) << "prefix of length " << len << "/" << seed.size()
                                 << " decoded successfully";
            EXPECT_EQ(d.body, nullptr);
        }
    }
}

TEST(WireFuzz, EverySingleByteCorruptionIsSafe) {
    // Flip each byte of each seed through several patterns. Not every
    // corruption is detectable (flipping a digest byte yields a different
    // valid message) — the property is the absence of crashes/UB, which the
    // sanitizer run enforces.
    for (const auto& seed : corpus_seeds()) {
        std::vector<std::uint8_t> buf = seed;
        for (std::size_t i = 0; i < buf.size(); ++i) {
            const std::uint8_t orig = buf[i];
            for (const std::uint8_t pattern :
                 {std::uint8_t{0x00}, std::uint8_t{0xff}, std::uint8_t{0x80},
                  static_cast<std::uint8_t>(orig + 1)}) {
                buf[i] = pattern;
                must_not_crash(as_span(buf));
            }
            buf[i] = orig;
        }
    }
}

TEST(WireFuzz, SeededRandomMutationsAreSafe) {
    std::mt19937_64 rng(0x5eed5eedULL);  // fixed seed: reproducible corpus
    const auto seeds = corpus_seeds();
    std::uniform_int_distribution<std::size_t> pick_seed(0, seeds.size() - 1);
    std::uniform_int_distribution<int> byte(0, 255);

    for (int iter = 0; iter < 20000; ++iter) {
        std::vector<std::uint8_t> buf = seeds[pick_seed(rng)];
        std::uniform_int_distribution<std::size_t> pos(0, buf.size() - 1);
        const int mutations = 1 + static_cast<int>(rng() % 8);
        for (int m = 0; m < mutations; ++m) {
            switch (rng() % 3) {
                case 0:  // overwrite a byte
                    buf[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
                    break;
                case 1:  // truncate
                    buf.resize(pos(rng));
                    break;
                case 2:  // append garbage
                    buf.push_back(static_cast<std::uint8_t>(byte(rng)));
                    break;
            }
            if (buf.empty()) break;
        }
        must_not_crash(as_span(buf));
    }
}

TEST(WireFuzz, PureGarbageIsSafe) {
    std::mt19937_64 rng(0xbadc0deULL);
    for (int iter = 0; iter < 5000; ++iter) {
        std::vector<std::uint8_t> buf(rng() % 256);
        for (auto& b : buf) b = static_cast<std::uint8_t>(rng() & 0xff);
        must_not_crash(as_span(buf));
    }
}

TEST(WireFuzz, BadBodyKindTag) {
    for (const std::uint8_t kind : {std::uint8_t{0}, std::uint8_t{5}, std::uint8_t{0xff}}) {
        const std::vector<std::uint8_t> buf = {kind, 0x00, 0x00, 0x00};
        const wire::DecodedBody d = wire::decode_body(as_span(buf));
        EXPECT_FALSE(d.ok());
        EXPECT_EQ(d.error, WireError::BadBodyKind) << "kind " << int(kind);
    }
}

TEST(WireFuzz, BadMsgTypeTag) {
    // kind=Paxos with tag 0 / 11 / 255 — outside [1, 10].
    for (const std::uint8_t tag : {std::uint8_t{0}, std::uint8_t{11}, std::uint8_t{0xff}}) {
        std::vector<std::uint8_t> buf = {0x03, tag};
        buf.insert(buf.end(), 8, 0x00);  // sender + group
        const wire::DecodedBody d = wire::decode_body(as_span(buf));
        EXPECT_FALSE(d.ok());
        EXPECT_EQ(d.error, WireError::BadMsgType) << "tag " << int(tag);
    }
}

TEST(WireFuzz, SenderCountAboveCapIsLimitExceeded) {
    // A Phase2bAggregate whose sender count field claims 2^31 entries must
    // be rejected before any allocation is attempted.
    wire::WireWriter w;
    w.u8(0x03);                  // Paxos
    w.u8(0x06);                  // Phase2bAggregate
    w.i32(9);                    // sender
    w.i32(0);                    // group
    w.i64(42);                   // instance
    w.i32(3);                    // round
    w.i32(2);                    // value_id.client
    w.i64(8);                    // value_id.seq
    w.u64(0xfeedfaceULL);        // digest
    w.u32(0x80000000u);          // sender count: absurd
    const wire::DecodedBody d = wire::decode_body(as_span(w.data()));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::LimitExceeded);
}

TEST(WireFuzz, GroupBatchEntryCountLyingIsTruncated) {
    // A GroupBatch announcing more entries than the buffer holds (but under
    // the cap) must come back Truncated, not crash in the recursive decode.
    wire::WireWriter w;
    w.u8(0x03);                  // Paxos
    w.u8(0x0a);                  // GroupBatch
    w.i32(5);                    // sender
    w.i32(0);                    // group
    w.u8(0x05);                  // verb = Phase2b
    w.u16(100);                  // entries: none actually follow
    const wire::DecodedBody d = wire::decode_body(as_span(w.data()));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::Truncated);
}

TEST(WireFuzz, GroupBatchCountAboveCapIsLimitExceeded) {
    wire::WireWriter w;
    w.u8(0x03);                  // Paxos
    w.u8(0x0a);                  // GroupBatch
    w.i32(5);                    // sender
    w.i32(0);                    // group
    w.u8(0x05);                  // verb = Phase2b
    w.u16(0xffff);               // count above kMaxBatchEntries
    const wire::DecodedBody d = wire::decode_body(as_span(w.data()));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::LimitExceeded);
}

TEST(WireFuzz, GroupBatchBadVerbTagRejected) {
    // Only Phase2b / Decision may be packed; a heartbeat verb is malformed.
    wire::WireWriter w;
    w.u8(0x03);                  // Paxos
    w.u8(0x0a);                  // GroupBatch
    w.i32(5);                    // sender
    w.i32(0);                    // group
    w.u8(0x09);                  // verb = Heartbeat: not packable
    w.u16(0);
    const wire::DecodedBody d = wire::decode_body(as_span(w.data()));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::BadField);
}

TEST(WireFuzz, DigestCountLyingAboutLengthIsTruncated) {
    // Count claims 1000 ids (under the cap) but the buffer holds none.
    wire::WireWriter w;
    w.u8(0x02);      // PullDigest
    w.u32(1000);     // count
    const wire::DecodedBody d = wire::decode_body(as_span(w.data()));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::Truncated);
}

TEST(WireFuzz, NestedEnvelopeRejected) {
    // An envelope whose nested body kind is another envelope (or a digest)
    // is malformed — recursion is not part of the format.
    for (const std::uint8_t nested : {std::uint8_t{1}, std::uint8_t{2}}) {
        wire::WireWriter w;
        w.u8(0x01);      // GossipEnvelope
        w.u64(1);        // id
        w.i32(0);        // origin
        w.u16(0);        // hops
        w.u8(0);         // flags
        w.u8(nested);    // nested kind: envelope / digest
        const wire::DecodedBody d = wire::decode_body(as_span(w.data()));
        EXPECT_FALSE(d.ok());
        EXPECT_EQ(d.error, WireError::BadBodyKind);
    }
}

TEST(WireFuzz, EnvelopeReservedFlagsRejected) {
    auto payload = std::make_shared<HeartbeatMsg>(7, 1, 1);
    GossipAppMessage app;
    app.id = 1;
    app.origin = 7;
    app.payload = payload;
    std::vector<std::uint8_t> buf = wire::encode_body(GossipEnvelope(app));
    // Flags byte sits after kind(1) + id(8) + origin(4) + hops(2).
    buf[15] = 0x02;  // reserved bit
    const wire::DecodedBody d = wire::decode_body(as_span(buf));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::BadField);
}

TEST(WireFuzz, BooleanFieldAboveOneRejected) {
    const ClientValueMsg msg(3, Value{ValueId{3, 17}, 1024, {}}, 2, 0, true);
    std::vector<std::uint8_t> buf = wire::encode_body(msg);
    buf.back() = 0x02;  // `forwarded` is the final byte; 2 is not a bool
    const wire::DecodedBody d = wire::decode_body(as_span(buf));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::BadField);
}

// ---- Frame-level attacks ---------------------------------------------------

std::vector<std::uint8_t> valid_frame() {
    const std::vector<std::uint8_t> body = wire::encode_body(HeartbeatMsg(7, 9, 3));
    return wire::encode_frame(wire::FrameType::Body, as_span(body));
}

void expect_corrupt(const std::vector<std::uint8_t>& bytes, WireError want) {
    wire::FrameParser parser;
    parser.feed(as_span(bytes));
    wire::Frame frame;
    ASSERT_EQ(parser.next(frame), wire::FrameParser::Result::Corrupt);
    EXPECT_EQ(parser.error(), want);
    // The stream stays poisoned: feeding a pristine frame cannot revive it.
    parser.feed(as_span(valid_frame()));
    EXPECT_EQ(parser.next(frame), wire::FrameParser::Result::Corrupt);
}

TEST(WireFuzz, FrameBadMagic) {
    std::vector<std::uint8_t> bytes = valid_frame();
    bytes[0] ^= 0xff;
    expect_corrupt(bytes, WireError::BadMagic);
}

TEST(WireFuzz, FrameBadVersion) {
    std::vector<std::uint8_t> bytes = valid_frame();
    bytes[4] = wire::kWireVersion + 1;
    expect_corrupt(bytes, WireError::BadVersion);
}

TEST(WireFuzz, FrameBadType) {
    std::vector<std::uint8_t> bytes = valid_frame();
    bytes[5] = 0x7f;
    expect_corrupt(bytes, WireError::BadFrameType);
}

TEST(WireFuzz, FrameReservedFlagsNonZero) {
    std::vector<std::uint8_t> bytes = valid_frame();
    bytes[6] = 0x01;
    expect_corrupt(bytes, WireError::BadField);
}

TEST(WireFuzz, FrameOversizedLength) {
    // Length field above kMaxFramePayload must be rejected from the header
    // alone — a parser that waits for the announced bytes can be made to
    // buffer 4GiB per connection.
    std::vector<std::uint8_t> bytes = valid_frame();
    const std::uint32_t huge = wire::kMaxFramePayload + 1;
    std::memcpy(bytes.data() + 8, &huge, sizeof huge);
    expect_corrupt(bytes, WireError::Oversized);
}

TEST(WireFuzz, FrameHeaderTruncationNeedsMore) {
    // A partial header is not an error for the incremental parser — the rest
    // may still arrive.
    const std::vector<std::uint8_t> bytes = valid_frame();
    for (std::size_t len = 0; len < wire::kFrameHeaderBytes; ++len) {
        wire::FrameParser parser;
        parser.feed(std::span<const std::uint8_t>(bytes.data(), len));
        wire::Frame frame;
        EXPECT_EQ(parser.next(frame), wire::FrameParser::Result::NeedMore) << "len " << len;
    }
}

TEST(WireFuzz, FrameStreamRandomGarbageIsSafe) {
    std::mt19937_64 rng(0xf4a2eULL);
    for (int iter = 0; iter < 2000; ++iter) {
        std::vector<std::uint8_t> buf(rng() % 128);
        for (auto& b : buf) b = static_cast<std::uint8_t>(rng() & 0xff);
        wire::FrameParser parser;
        parser.feed(as_span(buf));
        wire::Frame frame;
        // Drain until the parser stalls or poisons; bounded by buffer size.
        for (int i = 0; i < 64; ++i) {
            const auto r = parser.next(frame);
            if (r != wire::FrameParser::Result::Frame) break;
            must_not_crash(frame.payload);
        }
    }
}

// ---- Datagram-level attacks (DESIGN.md §12) --------------------------------
//
// Same corpus machinery as the stream framing, aimed at the datagram
// decoder: clustered sub-envelopes, the selective-ack header, and the
// reliability tags. Datagrams arrive from the network whole-or-mangled
// (UDP truncation, duplication, hostile peers), so the decoder must turn
// every malformed buffer into a typed error with zero allocations and
// zero UB.

/// Valid datagrams the mutation tests start from: a pure ack, a lone
/// best-effort sub, a mixed reliable/best-effort cluster (bodies are valid
/// codec encodings), and a cluster of opaque junk bodies — the link treats
/// body bytes as opaque, so they need not decode as messages.
std::vector<std::vector<std::uint8_t>> datagram_seeds() {
    std::vector<std::vector<std::uint8_t>> out;

    wire::DatagramHeader pure_ack;
    pure_ack.sender = 2;
    pure_ack.seq = 0;
    pure_ack.ack = 17;
    pure_ack.ack_bits = 0x0000ffffu;
    out.push_back(wire::encode_datagram(pure_ack, {}));

    const auto bodies = corpus_seeds();
    wire::DatagramHeader h;
    h.sender = 0;
    h.seq = 5;
    h.ack = 3;
    h.ack_bits = 0x3;

    std::vector<wire::DatagramSub> one;
    one.push_back(wire::DatagramSub{false, 0, bodies[0]});
    out.push_back(wire::encode_datagram(h, one));

    std::vector<wire::DatagramSub> cluster;
    for (std::size_t i = 0; i < bodies.size(); ++i) {
        const bool reliable = i % 2 == 0;
        cluster.push_back(wire::DatagramSub{
            reliable, reliable ? static_cast<std::uint32_t>(i + 1) : 0u, bodies[i]});
    }
    h.seq = 6;
    out.push_back(wire::encode_datagram(h, cluster));

    std::vector<wire::DatagramSub> junk;
    for (int i = 0; i < 4; ++i) {
        std::vector<std::uint8_t> body(static_cast<std::size_t>(50 + i * 37),
                                       static_cast<std::uint8_t>(0xa0 + i));
        junk.push_back(wire::DatagramSub{true, static_cast<std::uint32_t>(100 + i),
                                         std::move(body)});
    }
    h.seq = 7;
    out.push_back(wire::encode_datagram(h, junk));
    return out;
}

/// Decode must either succeed with a self-consistent view or fail cleanly.
void datagram_must_not_crash(std::span<const std::uint8_t> data) {
    wire::DatagramView view;
    const WireError err = wire::decode_datagram(data, view);
    if (err != WireError::None) return;
    EXPECT_GE(view.header.sender, 0);
    if (view.header.seq == 0) {
        EXPECT_TRUE(view.subs.empty());
    }
    for (const auto& sub : view.subs) {
        EXPECT_EQ(sub.reliable, sub.rel_id != 0);
        // Views must stay inside the input buffer (the sanitizer run turns
        // any out-of-bounds view into a hard failure when we touch it).
        EXPECT_LE(sub.body.size(), data.size());
        std::uint8_t checksum = 0;
        for (const std::uint8_t b : sub.body) checksum ^= b;
        (void)checksum;
    }
}

/// Builds the canonical mixed-cluster datagram and hands the raw buffer to
/// `mutate` before asserting the decoder's verdict.
template <typename Fn>
WireError decode_mutated_datagram(Fn mutate) {
    const auto bodies = corpus_seeds();
    wire::DatagramHeader h;
    h.sender = 1;
    h.seq = 9;
    h.ack = 4;
    std::vector<wire::DatagramSub> subs;
    subs.push_back(wire::DatagramSub{true, 7, bodies[0]});
    subs.push_back(wire::DatagramSub{false, 0, bodies[1]});
    std::vector<std::uint8_t> buf = wire::encode_datagram(h, subs);
    mutate(buf);
    wire::DatagramView view;
    return wire::decode_datagram(as_span(buf), view);
}

TEST(WireFuzz, DatagramSeedsRoundTrip) {
    for (const auto& seed : datagram_seeds()) {
        wire::DatagramView view;
        EXPECT_EQ(wire::decode_datagram(as_span(seed), view), WireError::None);
    }
}

TEST(WireFuzz, EveryPrefixOfEveryDatagramIsRejectedCleanly) {
    // The decoder is whole-buffer strict: a datagram truncated anywhere —
    // mid-header, mid-sub-header, mid-body — is a typed error. This is the
    // MTU-truncation fate the lossy harness injects.
    for (const auto& seed : datagram_seeds()) {
        for (std::size_t len = 0; len < seed.size(); ++len) {
            wire::DatagramView view;
            const WireError err =
                wire::decode_datagram(std::span<const std::uint8_t>(seed.data(), len), view);
            EXPECT_NE(err, WireError::None)
                << "prefix of length " << len << "/" << seed.size() << " decoded";
        }
    }
}

TEST(WireFuzz, EverySingleByteDatagramCorruptionIsSafe) {
    for (const auto& seed : datagram_seeds()) {
        std::vector<std::uint8_t> buf = seed;
        for (std::size_t i = 0; i < buf.size(); ++i) {
            const std::uint8_t orig = buf[i];
            for (const std::uint8_t pattern :
                 {std::uint8_t{0x00}, std::uint8_t{0xff}, std::uint8_t{0x80},
                  static_cast<std::uint8_t>(orig + 1)}) {
                buf[i] = pattern;
                datagram_must_not_crash(as_span(buf));
            }
            buf[i] = orig;
        }
    }
}

TEST(WireFuzz, SeededRandomDatagramMutationsAreSafe) {
    std::mt19937_64 rng(0xd474d474ULL);  // fixed seed: reproducible corpus
    const auto seeds = datagram_seeds();
    std::uniform_int_distribution<std::size_t> pick_seed(0, seeds.size() - 1);
    std::uniform_int_distribution<int> byte(0, 255);

    for (int iter = 0; iter < 20000; ++iter) {
        std::vector<std::uint8_t> buf = seeds[pick_seed(rng)];
        std::uniform_int_distribution<std::size_t> pos(0, buf.size() - 1);
        const int mutations = 1 + static_cast<int>(rng() % 8);
        for (int m = 0; m < mutations; ++m) {
            switch (rng() % 3) {
                case 0:  // overwrite a byte — sub lengths overlap, counts lie
                    buf[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
                    break;
                case 1:  // truncate — the harness's MTU-truncation fate
                    buf.resize(pos(rng));
                    break;
                case 2:  // append garbage — trailing bytes
                    buf.push_back(static_cast<std::uint8_t>(byte(rng)));
                    break;
            }
            if (buf.empty()) break;
        }
        datagram_must_not_crash(as_span(buf));
    }
}

// Pinned datagram attacks — each malformation maps to its specific error,
// so a decoder regression shows up as the wrong code, not just "some error".

TEST(WireFuzz, DatagramBadMagic) {
    const WireError err = decode_mutated_datagram([](auto& buf) { buf[0] ^= 0xff; });
    EXPECT_EQ(err, WireError::BadMagic);
}

TEST(WireFuzz, DatagramBadVersion) {
    const WireError err =
        decode_mutated_datagram([](auto& buf) { buf[4] = wire::kWireVersion + 1; });
    EXPECT_EQ(err, WireError::BadVersion);
}

TEST(WireFuzz, DatagramEpochRoundTrips) {
    // The epoch byte (offset 5) is the sender's link incarnation: every value
    // is legal and must survive the codec — a restarted sender relies on the
    // receiver seeing the changed epoch to reset its dedup state.
    for (const std::uint8_t epoch : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{0xff}}) {
        const auto bodies = corpus_seeds();
        wire::DatagramHeader h;
        h.sender = 1;
        h.epoch = epoch;
        h.seq = 9;
        std::vector<wire::DatagramSub> subs;
        subs.push_back(wire::DatagramSub{true, 7, bodies[0]});
        const std::vector<std::uint8_t> buf = wire::encode_datagram(h, subs);
        EXPECT_EQ(buf[5], epoch);
        wire::DatagramView view;
        ASSERT_EQ(wire::decode_datagram(as_span(buf), view), WireError::None);
        EXPECT_EQ(view.header.epoch, epoch);
    }
}

TEST(WireFuzz, DatagramNegativeSenderRejected) {
    const WireError err = decode_mutated_datagram([](auto& buf) {
        buf[8] = buf[9] = buf[10] = buf[11] = 0xff;  // sender = -1
    });
    EXPECT_EQ(err, WireError::BadField);
}

TEST(WireFuzz, DatagramUnsequencedWithSubsRejected) {
    // seq == 0 marks a pure ack, which must carry count == 0: zero the seq
    // field of a datagram that still claims two subs.
    const WireError err = decode_mutated_datagram([](auto& buf) {
        buf[12] = buf[13] = buf[14] = buf[15] = 0x00;
    });
    EXPECT_EQ(err, WireError::BadField);
}

TEST(WireFuzz, DatagramCountLyingIsTruncated) {
    // Count claims 0xffff subs: even the sub-headers alone (9 bytes each)
    // exceed the buffer, and the decoder must say so before reading any.
    const WireError err = decode_mutated_datagram([](auto& buf) {
        buf[6] = 0xff;
        buf[7] = 0xff;
    });
    EXPECT_EQ(err, WireError::Truncated);
}

TEST(WireFuzz, DatagramSubLengthOverrunIsTruncated) {
    // First sub's length field (header + sub flags(1) + rel_id(4)) inflated
    // past the end of the buffer — the "overlapping lengths" attack.
    const WireError err = decode_mutated_datagram([](auto& buf) {
        const std::size_t len_off = wire::kDatagramHeaderBytes + 5;
        const std::uint32_t huge = 0x0000ffffu;
        std::memcpy(buf.data() + len_off, &huge, sizeof huge);
    });
    EXPECT_EQ(err, WireError::Truncated);
}

TEST(WireFuzz, DatagramSubReservedFlagsRejected) {
    const WireError err = decode_mutated_datagram(
        [](auto& buf) { buf[wire::kDatagramHeaderBytes] = 0x82; });
    EXPECT_EQ(err, WireError::BadField);
}

TEST(WireFuzz, DatagramReliableWithZeroRelIdRejected) {
    // First sub is reliable with rel_id 7; zero the rel_id.
    const WireError err = decode_mutated_datagram([](auto& buf) {
        const std::size_t rel_off = wire::kDatagramHeaderBytes + 1;
        std::memset(buf.data() + rel_off, 0, 4);
    });
    EXPECT_EQ(err, WireError::BadField);
}

TEST(WireFuzz, DatagramBestEffortWithRelIdRejected) {
    // Second sub is best-effort with rel_id 0; give it a rel_id. Its offset
    // depends on the first body's size, so rebuild instead of patching.
    const auto bodies = corpus_seeds();
    wire::DatagramHeader h;
    h.sender = 1;
    h.seq = 9;
    wire::WireWriter w;
    w.u32(wire::kDatagramMagic);
    w.u8(wire::kWireVersion);
    w.u8(0);                       // flags
    w.u16(1);                      // count
    w.i32(h.sender);
    w.u32(h.seq);
    w.u32(0);                      // ack
    w.u32(0);                      // ack_bits
    w.u8(0);                       // sub flags: best-effort
    w.u32(12345);                  // ...but a rel_id anyway
    w.u32(static_cast<std::uint32_t>(bodies[0].size()));
    w.bytes(as_span(bodies[0]));
    wire::DatagramView view;
    EXPECT_EQ(wire::decode_datagram(as_span(w.data()), view), WireError::BadField);
}

TEST(WireFuzz, DatagramTrailingBytesRejected) {
    const WireError err = decode_mutated_datagram([](auto& buf) { buf.push_back(0x00); });
    EXPECT_EQ(err, WireError::TrailingBytes);
}

TEST(WireFuzz, DatagramOversizedRejectedBeforeParsing) {
    // A buffer above the UDP/IPv4 ceiling cannot have come off a socket;
    // reject on size alone, without touching the contents.
    std::vector<std::uint8_t> buf(wire::kMaxDatagramBytes + 1, 0xee);
    wire::DatagramView view;
    EXPECT_EQ(wire::decode_datagram(as_span(buf), view), WireError::Oversized);
}

TEST(WireFuzz, DatagramHostileAckFieldsStillDecode) {
    // ack/ack_bits are peer-controlled state, not structure: absurd values
    // (far-future cumulative ack, every selective bit set) must decode fine —
    // it is the reliability layer's job to ignore nonsense, tested in
    // test_udp_transport.cpp.
    wire::DatagramHeader h;
    h.sender = 3;
    h.seq = 0;
    h.ack = 0xffffffffu;
    h.ack_bits = 0xffffffffu;
    const auto buf = wire::encode_datagram(h, {});
    wire::DatagramView view;
    ASSERT_EQ(wire::decode_datagram(as_span(buf), view), WireError::None);
    EXPECT_EQ(view.header.ack, 0xffffffffu);
    EXPECT_EQ(view.header.ack_bits, 0xffffffffu);
}

TEST(WireFuzz, HelloPayloadWrongLength) {
    const wire::Hello hello{5, 8};
    const std::vector<std::uint8_t> frame = wire::encode_hello_frame(hello);
    // Hello payload is the 8 bytes after the 12-byte header.
    const std::span<const std::uint8_t> payload(frame.data() + wire::kFrameHeaderBytes, 8);

    wire::Hello out;
    EXPECT_EQ(wire::decode_hello(payload.subspan(0, 7), out), WireError::Truncated);
    std::vector<std::uint8_t> long_payload(payload.begin(), payload.end());
    long_payload.push_back(0);
    EXPECT_EQ(wire::decode_hello(as_span(long_payload), out), WireError::TrailingBytes);
}

}  // namespace
}  // namespace gossipc
