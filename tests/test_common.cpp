// Unit tests: SimTime arithmetic, hashing, and RNG streams.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace gossipc {
namespace {

TEST(SimTime, ConversionsRoundTrip) {
    EXPECT_EQ(SimTime::micros(5).as_nanos(), 5000);
    EXPECT_EQ(SimTime::millis(1.5).as_micros(), 1500);
    EXPECT_DOUBLE_EQ(SimTime::seconds(2.0).as_millis(), 2000.0);
    EXPECT_DOUBLE_EQ(SimTime::millis(7.0).as_seconds(), 0.007);
}

TEST(SimTime, Arithmetic) {
    const SimTime a = SimTime::millis(10);
    const SimTime b = SimTime::millis(4);
    EXPECT_EQ((a + b).as_millis(), 14.0);
    EXPECT_EQ((a - b).as_millis(), 6.0);
    EXPECT_EQ((b * 3).as_millis(), 12.0);
    SimTime c = a;
    c += b;
    EXPECT_EQ(c, SimTime::millis(14));
}

TEST(SimTime, Ordering) {
    EXPECT_LT(SimTime::zero(), SimTime::nanos(1));
    EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
    EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
    EXPECT_EQ(SimTime::micros(1000), SimTime::millis(1.0));
}

TEST(Hashing, Mix64SpreadsBits) {
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hashing, HashCombineOrderSensitive) {
    EXPECT_NE(hash_combine(hash_combine(0, 1), 2), hash_combine(hash_combine(0, 2), 1));
}

TEST(ValueIdTest, EqualityAndHash) {
    const ValueId a{1, 42};
    const ValueId b{1, 42};
    const ValueId c{2, 42};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(std::hash<ValueId>{}(a), std::hash<ValueId>{}(b));
}

TEST(RngTest, DeterministicBySeed) {
    Rng a(7), b(7), c(8);
    const auto x = a.uniform_int(0, 1'000'000);
    EXPECT_EQ(x, b.uniform_int(0, 1'000'000));
    // Different seeds diverge almost surely over a few draws.
    bool diverged = false;
    for (int i = 0; i < 8; ++i) {
        diverged |= a.next_u64() != c.next_u64();
    }
    EXPECT_TRUE(diverged);
}

TEST(RngTest, DerivedStreamsIndependent) {
    Rng a = Rng::derive(1, "overlay");
    Rng b = Rng::derive(1, "jitter");
    EXPECT_NE(a.next_u64(), b.next_u64());
    Rng a2 = Rng::derive(1, "overlay");
    EXPECT_EQ(Rng::derive(1, "overlay").next_u64(), a2.next_u64());
}

TEST(RngTest, UniformIntBoundsInclusive) {
    Rng r(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(2, 5));
    EXPECT_EQ(*seen.begin(), 2);
    EXPECT_EQ(*seen.rbegin(), 5);
    EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformIntRejectsBadRange) {
    Rng r(3);
    EXPECT_THROW(r.uniform_int(5, 2), std::invalid_argument);
}

TEST(RngTest, ChanceEdges) {
    Rng r(11);
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(RngTest, ChanceApproximatesProbability) {
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
    Rng r(9);
    double sum_ms = 0;
    const int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) sum_ms += r.exponential(SimTime::millis(10)).as_millis();
    EXPECT_NEAR(sum_ms / kSamples, 10.0, 0.5);
}

TEST(RngTest, SampleDistinctProperties) {
    Rng r(13);
    const auto s = r.sample_distinct(50, 10, /*excluded=*/7);
    EXPECT_EQ(s.size(), 10u);
    std::set<std::int32_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 10u);
    EXPECT_FALSE(set.contains(7));
    for (const auto v : s) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 50);
    }
}

TEST(RngTest, SampleDistinctFullPool) {
    Rng r(17);
    const auto s = r.sample_distinct(5, 4, /*excluded=*/2);
    std::set<std::int32_t> set(s.begin(), s.end());
    EXPECT_EQ(set, (std::set<std::int32_t>{0, 1, 3, 4}));
}

TEST(RngTest, SampleDistinctRejectsOversample) {
    Rng r(19);
    EXPECT_THROW(r.sample_distinct(5, 5, /*excluded=*/0), std::invalid_argument);
    EXPECT_THROW(r.sample_distinct(5, -1), std::invalid_argument);
}

TEST(RngTest, ShuffleIsPermutation) {
    Rng r(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto w = v;
    r.shuffle(w);
    std::multiset<int> a(v.begin(), v.end()), b(w.begin(), w.end());
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gossipc
