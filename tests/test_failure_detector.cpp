// Failure-detector unit tests (DESIGN.md §8): suspicion timing with startup
// grace, false-positive recovery via restore callbacks, heartbeat
// piggybacking/suppression, deterministic jitter, and the rank-based
// succession rule.
#include <gtest/gtest.h>

#include <vector>

#include "detect/failure_detector.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

using testutil::FakeTransport;

PaxosConfig detector_config(int n = 5, ProcessId id = 0, std::uint64_t seed = 1) {
    PaxosConfig pc;
    pc.n = n;
    pc.id = id;
    pc.seed = seed;
    pc.failover_enabled = true;
    // Defaults: heartbeat 100ms, suspect_after 450ms, sweep 50ms, jitter
    // up to 60ms.
    return pc;
}

class FailureDetectorTest : public ::testing::Test {
protected:
    CpuContext ctx() { return CpuContext{sim.now()}; }

    Simulator sim;
};

TEST_F(FailureDetectorTest, SilentPeersBecomeSuspectedAfterGracePlusTimeout) {
    FakeTransport ft(sim, 0);
    ft.loopback = false;
    const PaxosConfig pc = detector_config();
    FailureDetector fd(pc, ft);
    std::vector<ProcessId> suspected;
    fd.set_on_suspect([&](ProcessId p, CpuContext&) { suspected.push_back(p); });
    fd.start();

    // Startup grace: deadlines start one suspect_after in the future, so
    // nothing is suspected before grace + suspect_after = 900ms.
    sim.run_until(SimTime::millis(890));
    EXPECT_EQ(fd.suspected_count(), 0u);
    EXPECT_TRUE(suspected.empty());

    // By 900ms + max jitter (60ms) + one sweep period (50ms), every silent
    // peer is suspected exactly once.
    sim.run_until(SimTime::millis(1020));
    EXPECT_EQ(fd.suspected_count(), 4u);
    EXPECT_EQ(suspected.size(), 4u);
    for (ProcessId p = 1; p < pc.n; ++p) EXPECT_TRUE(fd.suspects(p));
    EXPECT_FALSE(fd.suspects(0));  // never self
    EXPECT_EQ(fd.counters().suspicions, 4u);
}

TEST_F(FailureDetectorTest, ObservedTrafficDefersSuspicion) {
    FakeTransport ft(sim, 0);
    ft.loopback = false;
    FailureDetector fd(detector_config(), ft);
    fd.start();

    // Keep hearing from peer 1 every 200ms; stay silent about the rest.
    for (int ms = 200; ms <= 1600; ms += 200) {
        sim.schedule_at(SimTime::millis(ms), [&] {
            CpuContext c{sim.now()};
            fd.observe_alive(1, c);
        });
    }
    sim.run_until(SimTime::millis(1600));
    EXPECT_FALSE(fd.suspects(1));
    EXPECT_TRUE(fd.suspects(2));

    // Peer 1 then goes silent: suspected ~450ms (+jitter) later.
    sim.run_until(SimTime::millis(2200));
    EXPECT_TRUE(fd.suspects(1));
}

TEST_F(FailureDetectorTest, HearingFromSuspectedPeerFiresRestore) {
    FakeTransport ft(sim, 0);
    ft.loopback = false;
    FailureDetector fd(detector_config(), ft);
    std::vector<ProcessId> restored;
    fd.set_on_restore([&](ProcessId p, CpuContext&) { restored.push_back(p); });
    fd.start();

    sim.run_until(SimTime::millis(1100));
    ASSERT_TRUE(fd.suspects(3));

    // False-positive recovery: the peer was only slow, not dead.
    auto c = ctx();
    fd.observe_alive(3, c);
    EXPECT_FALSE(fd.suspects(3));
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0], 3);
    EXPECT_EQ(fd.counters().restores, 1u);

    // The deadline restarts from the restore: suspected again ~450ms later.
    sim.run_until(sim.now() + SimTime::millis(600));
    EXPECT_TRUE(fd.suspects(3));
}

TEST_F(FailureDetectorTest, IdleProcessBroadcastsHeartbeats) {
    FakeTransport ft(sim, 0);
    ft.loopback = false;
    FailureDetector fd(detector_config(), ft);
    fd.start();
    sim.run_until(SimTime::seconds(1));

    const auto heartbeats = ft.sent_of(PaxosMsgType::Heartbeat);
    EXPECT_EQ(heartbeats.size(), fd.counters().heartbeats_sent);
    // One per heartbeat_interval (100ms) over one idle second.
    EXPECT_GE(heartbeats.size(), 8u);
    // Sequence numbers make every heartbeat's gossip key unique.
    for (std::size_t i = 1; i < heartbeats.size(); ++i) {
        EXPECT_NE(heartbeats[i]->unique_key(), heartbeats[i - 1]->unique_key());
    }
}

TEST_F(FailureDetectorTest, ProtocolTrafficSuppressesHeartbeats) {
    FakeTransport ft(sim, 0);
    ft.loopback = false;
    FailureDetector fd(detector_config(), ft);
    fd.start();

    // Originate protocol traffic every 40ms: the process is audibly alive,
    // so explicit heartbeats are redundant (piggybacking).
    std::function<void()> chatter = [&] {
        CpuContext c{sim.now()};
        ft.broadcast(std::make_shared<Phase1aMsg>(0, 1, 1), c);
        sim.schedule_after(SimTime::millis(40), chatter);
    };
    sim.schedule_after(SimTime::millis(40), chatter);

    sim.run_until(SimTime::seconds(1));
    EXPECT_EQ(fd.counters().heartbeats_sent, 0u);
    EXPECT_GE(fd.counters().heartbeats_suppressed, 8u);
}

TEST_F(FailureDetectorTest, JitterIsDeterministicBoundedAndSeedDependent) {
    FakeTransport ft(sim, 0);
    const PaxosConfig pc = detector_config(7, 2, 9);
    FailureDetector a(pc, ft);
    FailureDetector b(pc, ft);
    bool seed_changes_some_jitter = false;
    PaxosConfig other = pc;
    other.seed = 10;
    FailureDetector c(other, ft);
    for (ProcessId p = 0; p < pc.n; ++p) {
        // Pure hash of (seed, observer, peer): identical across instances.
        EXPECT_EQ(a.jitter_for(p), b.jitter_for(p));
        EXPECT_GE(a.jitter_for(p), SimTime::zero());
        EXPECT_LE(a.jitter_for(p), pc.suspicion_jitter_max);
        if (!(a.jitter_for(p) == c.jitter_for(p))) seed_changes_some_jitter = true;
    }
    EXPECT_TRUE(seed_changes_some_jitter);
}

TEST_F(FailureDetectorTest, NextLiveAfterSkipsSuspectedPeers) {
    FakeTransport ft(sim, 2);
    FailureDetector fd(detector_config(5, /*id=*/2), ft);
    fd.start();

    // Nothing suspected: plain rank order.
    EXPECT_EQ(fd.next_live_after(0), 1);
    EXPECT_EQ(fd.next_live_after(4), 0);

    // Let every peer become suspected, then revive peer 4 only.
    sim.run_until(SimTime::millis(1100));
    ASSERT_EQ(fd.suspected_count(), 4u);
    // With everyone else suspected, succession falls back to this process.
    EXPECT_EQ(fd.next_live_after(0), 2);
    auto c = ctx();
    fd.observe_alive(4, c);
    // 3 is suspected, 4 is live again: 4 succeeds a failed 2's successor 3.
    EXPECT_EQ(fd.next_live_after(2), 4);
    EXPECT_EQ(fd.next_live_after(3), 4);
}

}  // namespace
}  // namespace gossipc
