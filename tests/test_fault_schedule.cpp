// Unit tests for the fault-injection engine: schedule ordering and canonical
// rendering, chaos generation, and injector semantics (fault-lane priority,
// partition symmetry, crash-then-restart state wipe vs. preserve, churn edge
// accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/semantic_gossip.hpp"

namespace gossipc {
namespace {

// --- schedule data model ---

TEST(FaultScheduleTest, EventsSortedByTimeInsertionOrderOnTies) {
    FaultSchedule s;
    s.heal(SimTime::millis(5));
    s.crash(SimTime::millis(1), 2, /*wipe_state=*/true);
    s.restart(SimTime::millis(5), 2);
    s.crash(SimTime::millis(3), 4);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s.events()[0].at, SimTime::millis(1));
    EXPECT_EQ(s.events()[1].at, SimTime::millis(3));
    // Equal times keep insertion order (heal was added before restart),
    // matching the simulator queue's tie-break.
    EXPECT_EQ(s.events()[2].at, SimTime::millis(5));
    EXPECT_TRUE(std::holds_alternative<HealFault>(s.events()[2].action));
    EXPECT_TRUE(std::holds_alternative<RestartFault>(s.events()[3].action));
}

TEST(FaultScheduleTest, MergePreservesExecutionOrder) {
    FaultSchedule a;
    a.crash(SimTime::millis(1), 0);
    a.restart(SimTime::millis(9), 0);
    FaultSchedule b;
    b.heal(SimTime::millis(5));
    a.merge(b);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_TRUE(std::holds_alternative<HealFault>(a.events()[1].action));
}

TEST(FaultScheduleTest, DescribeIsCanonical) {
    EXPECT_EQ(describe(FaultAction{CrashFault{4, true}}), "crash p4 wipe");
    EXPECT_EQ(describe(FaultAction{CrashFault{4, false}}), "crash p4 preserve");
    EXPECT_EQ(describe(FaultAction{RestartFault{4}}), "restart p4");
    // Partition sides render sorted regardless of construction order.
    EXPECT_EQ(describe(FaultAction{PartitionFault{{5, 2, 3}}}), "partition {2,3,5}");
    EXPECT_EQ(describe(FaultAction{HealFault{}}), "heal");
    EXPECT_EQ(describe(FaultAction{ChurnDropEdge{1, 2}}), "churn-drop 1-2");
    EXPECT_EQ(describe(FaultAction{ChurnAddEdge{1, 2}}), "churn-add 1-2");
    LinkFaultSpec spec;
    spec.loss = 0.5;
    spec.extra_delay = SimTime::millis(1);
    EXPECT_EQ(describe(FaultAction{LinkFaultStart{0, 1, spec}}),
              "link-fault 0->1 loss=0.5 delay_ns=1000000 dup=0 reorder_ns=0");
    EXPECT_EQ(describe(FaultAction{LinkFaultEnd{0, 1}}), "link-fault-end 0->1");
}

// --- chaos generation ---

TEST(ChaosGeneratorTest, DeterministicInSeedAndProfile) {
    const Graph overlay = make_connected_overlay(9, 7);
    const auto a = generate_chaos(9, 0, ChaosProfile::moderate(), 33, &overlay);
    const auto b = generate_chaos(9, 0, ChaosProfile::moderate(), 33, &overlay);
    EXPECT_EQ(a.describe(), b.describe());
    const auto c = generate_chaos(9, 0, ChaosProfile::moderate(), 34, &overlay);
    EXPECT_NE(a.describe(), c.describe());
    const auto d = generate_chaos(9, 0, ChaosProfile::heavy(), 33, &overlay);
    EXPECT_NE(a.describe(), d.describe());
}

TEST(ChaosGeneratorTest, SchedulesAreSelfResolvingWithinWindow) {
    const int n = 13;
    const Graph overlay = make_connected_overlay(n, 42);
    for (const ChaosProfile& profile :
         {ChaosProfile::light(), ChaosProfile::moderate(), ChaosProfile::heavy()}) {
        for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
            const auto s = generate_chaos(n, 0, profile, seed, &overlay);
            int crashes = 0, restarts = 0, partitions = 0, heals = 0;
            int lf_starts = 0, lf_ends = 0, churn_drops = 0, churn_adds = 0;
            const SimTime window_end = profile.start + profile.horizon;
            for (const FaultEvent& e : s.events()) {
                EXPECT_GE(e.at, profile.start) << profile.name << " seed " << seed;
                EXPECT_LE(e.at, window_end) << profile.name << " seed " << seed;
                if (std::holds_alternative<CrashFault>(e.action)) {
                    ++crashes;
                } else if (std::holds_alternative<RestartFault>(e.action)) {
                    ++restarts;
                } else if (const auto* p = std::get_if<PartitionFault>(&e.action)) {
                    ++partitions;
                    // Minority side, never containing the coordinator.
                    EXPECT_LE(p->side.size(), static_cast<std::size_t>((n - 1) / 2));
                    EXPECT_FALSE(p->side.empty());
                    for (const ProcessId m : p->side) EXPECT_NE(m, 0);
                } else if (std::holds_alternative<HealFault>(e.action)) {
                    ++heals;
                } else if (std::holds_alternative<LinkFaultStart>(e.action)) {
                    ++lf_starts;
                } else if (std::holds_alternative<LinkFaultEnd>(e.action)) {
                    ++lf_ends;
                } else if (std::holds_alternative<ChurnDropEdge>(e.action)) {
                    ++churn_drops;
                } else if (std::holds_alternative<ChurnAddEdge>(e.action)) {
                    ++churn_adds;
                }
            }
            EXPECT_EQ(crashes, profile.crashes);
            EXPECT_EQ(restarts, crashes);  // every crash has its restart
            EXPECT_EQ(partitions, profile.partitions);
            EXPECT_EQ(heals, partitions);
            EXPECT_EQ(lf_starts, profile.link_faults);
            EXPECT_EQ(lf_ends, lf_starts);
            EXPECT_EQ(churn_drops, churn_adds);  // churn reverts itself
            EXPECT_EQ(churn_drops + churn_adds, 2 * profile.churn_ops);
        }
    }
}

TEST(ChaosGeneratorTest, HeavyFailoverAddsPermanentCoordinatorCrash) {
    const int n = 13;
    const Graph overlay = make_connected_overlay(n, 42);
    const ChaosProfile profile = ChaosProfile::heavy_failover();
    const auto s = generate_chaos(n, 0, profile, 3, &overlay);
    int crashes = 0, restarts = 0, coordinator_crashes = 0;
    for (const FaultEvent& e : s.events()) {
        if (const auto* c = std::get_if<CrashFault>(&e.action)) {
            ++crashes;
            if (c->process == 0) {
                ++coordinator_crashes;
                // The permanent crash preserves state and lands at the
                // configured fraction of the window.
                EXPECT_FALSE(c->wipe_state);
                EXPECT_EQ(e.at,
                          profile.start + SimTime::nanos(static_cast<std::int64_t>(
                                              profile.horizon.as_nanos() *
                                              profile.coordinator_crash_frac)));
            }
        } else if (const auto* r = std::get_if<RestartFault>(&e.action)) {
            ++restarts;
            EXPECT_NE(r->process, 0);  // the coordinator never comes back
        }
    }
    EXPECT_EQ(coordinator_crashes, 1);
    EXPECT_EQ(crashes, profile.crashes + 1);
    EXPECT_EQ(restarts, profile.crashes);
}

TEST(ChaosGeneratorTest, BaselineWithoutOverlayOmitsChurn) {
    const auto s = generate_chaos(7, 0, ChaosProfile::moderate(), 5, nullptr);
    for (const FaultEvent& e : s.events()) {
        EXPECT_FALSE(std::holds_alternative<ChurnDropEdge>(e.action));
        EXPECT_FALSE(std::holds_alternative<ChurnAddEdge>(e.action));
    }
    EXPECT_FALSE(s.empty());
}

// --- simulator fault lane ---

TEST(FaultLaneTest, FaultsRunBeforeOrdinaryEventsAtSameInstant) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(SimTime::millis(1), [&] { order.push_back(1); });
    sim.schedule_fault(SimTime::millis(1), [&] { order.push_back(2); });
    sim.schedule_at(SimTime::millis(1), [&] { order.push_back(3); });
    sim.run_until(SimTime::millis(2));
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 2);  // the fault fires first despite later insertion
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 3);
    EXPECT_EQ(sim.faults_executed(), 1u);
    EXPECT_EQ(sim.events_executed(), 3u);
}

// --- injector semantics (driven through a real deployment) ---

TEST(FaultInjectorTest, PartitionCutsAreSymmetricAndHealRestores) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = 7;
    cfg.faults.partition(SimTime::millis(10), {1, 2});
    cfg.faults.heal(SimTime::millis(50));
    Deployment d(cfg);
    d.start_processes();
    d.simulator().run_until(SimTime::millis(20));

    Network& net = d.network();
    int cross_links = 0;
    for (const ProcessId a : {1, 2}) {
        for (ProcessId b = 0; b < cfg.n; ++b) {
            if (b == 1 || b == 2) continue;
            if (!net.link_allowed(a, b)) continue;
            EXPECT_TRUE(net.link_cut(a, b)) << a << "->" << b;
            EXPECT_TRUE(net.link_cut(b, a)) << b << "->" << a;  // symmetric
            ++cross_links;
        }
    }
    EXPECT_GT(cross_links, 0);  // a connected overlay has cross edges
    if (net.link_allowed(1, 2)) {
        EXPECT_FALSE(net.link_cut(1, 2));  // intra-side links stay up
    }

    d.simulator().run_until(SimTime::millis(60));
    for (ProcessId a = 0; a < cfg.n; ++a) {
        for (ProcessId b = 0; b < cfg.n; ++b) {
            if (a != b && net.link_allowed(a, b)) {
                EXPECT_FALSE(net.link_cut(a, b));
            }
        }
    }
    const auto& c = d.fault_injector()->counters();
    EXPECT_EQ(c.partitions, 1u);
    EXPECT_EQ(c.heals, 1u);
}

TEST(FaultInjectorTest, CrashThenRestartWipeVsPreserve) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = 7;
    cfg.total_rate = 52.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(2.5);
    // Two concurrent crash/restart cycles: p3 loses its disk, p4 keeps it.
    cfg.faults.crash(SimTime::millis(800), 3, /*wipe_state=*/true);
    cfg.faults.crash(SimTime::millis(800), 4, /*wipe_state=*/false);
    cfg.faults.restart(SimTime::millis(1200), 3);
    cfg.faults.restart(SimTime::millis(1200), 4);
    Deployment d(cfg);
    const auto result = d.run();

    const auto& c = d.fault_injector()->counters();
    EXPECT_EQ(c.crashes, 2u);
    EXPECT_EQ(c.restarts, 2u);
    EXPECT_EQ(c.wipes, 1u);  // only p3's restart wiped durable state
    EXPECT_EQ(result.faults_injected, 4u);
    const std::string log = d.fault_injector()->rendered_log();
    EXPECT_NE(log.find("crash p3 wipe"), std::string::npos);
    EXPECT_NE(log.find("crash p4 preserve"), std::string::npos);

    // Both recovered: the wiped process re-learned the log through repair.
    EXPECT_GT(d.process(3).learner().frontier(), 1);
    EXPECT_GT(d.process(4).learner().frontier(), 1);
}

TEST(FaultInjectorTest, WipeResetsAcceptorAndLearnerState) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = 7;
    cfg.total_rate = 52.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(1.5);
    Deployment d(cfg);
    d.run();
    ASSERT_GT(d.process(3).learner().frontier(), 1);

    d.wipe_process_state(3);
    EXPECT_EQ(d.process(3).learner().frontier(), 1);
    EXPECT_EQ(d.process(3).learner().delivered_count(), 0u);
    const auto report = d.process(3).acceptor().on_phase1a(999, 1);
    EXPECT_TRUE(report.accepted.empty());

    // Wiping an acting coordinator is not a recoverable state — refused.
    EXPECT_THROW(d.wipe_process_state(0), std::logic_error);
}

TEST(FaultInjectorTest, ChurnEdgeAccountingRestoresOverlay) {
    // A ring: every edge sits on a cycle, so any single drop keeps the
    // overlay connected and the injector never refuses.
    const int n = 7;
    Graph ring(n);
    for (ProcessId p = 0; p < n; ++p) ring.add_edge(p, (p + 1) % n);

    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = n;
    cfg.overlay = ring;
    cfg.faults.churn_drop(SimTime::millis(10), 0, 1);   // existing edge out...
    cfg.faults.churn_add(SimTime::millis(15), 0, 3);    // ...fresh chord in...
    cfg.faults.churn_add(SimTime::millis(30), 0, 1);    // ...ring restored...
    cfg.faults.churn_drop(SimTime::millis(40), 0, 3);   // ...chord removed.
    Deployment d(cfg);
    d.start_processes();
    d.simulator().run_until(SimTime::millis(60));

    const auto& c = d.fault_injector()->counters();
    EXPECT_EQ(c.edges_dropped, 2u);
    EXPECT_EQ(c.edges_added, 2u);
    EXPECT_EQ(c.skipped, 0u);
    // Edge accounting: the overlay is back to the original ring.
    ASSERT_NE(d.overlay(), nullptr);
    EXPECT_EQ(d.overlay()->edge_count(), static_cast<std::size_t>(n));
    EXPECT_TRUE(d.overlay()->has_edge(0, 1));
    EXPECT_FALSE(d.overlay()->has_edge(0, 3));
    // The gossip layer tracked the same membership changes.
    EXPECT_EQ(d.gossip_node(0)->counters().peers_removed, 2u);
    EXPECT_EQ(d.gossip_node(0)->counters().peers_added, 2u);
    EXPECT_TRUE(d.gossip_node(0)->is_peer(1));
    EXPECT_FALSE(d.gossip_node(0)->is_peer(3));
    EXPECT_EQ(d.gossip_node(0)->active_peer_count(), 2u);
}

TEST(FaultInjectorTest, ChurnRefusesToDisconnectOverlay) {
    // A path: every edge is a bridge, so any drop would disconnect.
    const int n = 5;
    Graph path(n);
    for (ProcessId p = 0; p + 1 < n; ++p) path.add_edge(p, p + 1);

    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = n;
    cfg.overlay = path;
    cfg.faults.churn_drop(SimTime::millis(10), 1, 2);
    Deployment d(cfg);
    d.start_processes();
    d.simulator().run_until(SimTime::millis(20));

    const auto& c = d.fault_injector()->counters();
    EXPECT_EQ(c.edges_dropped, 0u);
    EXPECT_EQ(c.skipped, 1u);
    EXPECT_TRUE(d.overlay()->has_edge(1, 2));
    EXPECT_NE(d.fault_injector()->rendered_log().find("would disconnect overlay"),
              std::string::npos);
}

TEST(FaultInjectorTest, InapplicableEventsAreLoggedAsSkipped) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 5;
    cfg.faults.restart(SimTime::millis(5), 2);      // restart of a live process
    cfg.faults.churn_drop(SimTime::millis(6), 0, 1);  // Baseline has no overlay
    Deployment d(cfg);
    d.start_processes();
    d.simulator().run_until(SimTime::millis(10));

    const auto& c = d.fault_injector()->counters();
    EXPECT_EQ(c.applied, 0u);
    EXPECT_EQ(c.skipped, 2u);
    const auto& log = d.fault_injector()->log();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_NE(log[0].find("[skipped: not crashed]"), std::string::npos);
    EXPECT_NE(log[1].find("[skipped: no overlay]"), std::string::npos);
}

TEST(FaultInjectorTest, ScheduleTargetingUnknownProcessIsRejected) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 5;
    cfg.faults.crash(SimTime::millis(1), 9);
    EXPECT_THROW(Deployment d(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace gossipc
