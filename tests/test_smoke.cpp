// End-to-end smoke: each of the three setups orders values.
#include <gtest/gtest.h>

#include "core/semantic_gossip.hpp"

namespace gossipc {
namespace {

TEST(Smoke, AllSetupsOrderValues) {
    using ::gossipc::Setup;  // disambiguate from testing::Test::Setup
    for (const auto setup : {Setup::Baseline, Setup::Gossip, Setup::SemanticGossip}) {
        ExperimentConfig cfg;
        cfg.setup = setup;
        cfg.n = 7;
        cfg.total_rate = 20.0;
        cfg.warmup = SimTime::seconds(0.5);
        cfg.measure = SimTime::seconds(2.0);
        cfg.drain = SimTime::seconds(2.0);
        const auto result = run_experiment(cfg);
        EXPECT_GT(result.workload.completed, 0u) << setup_name(setup);
        EXPECT_EQ(result.workload.not_ordered, 0u) << setup_name(setup);
        EXPECT_GT(result.workload.latencies.mean(), 0.0) << setup_name(setup);
    }
}

}  // namespace
}  // namespace gossipc
