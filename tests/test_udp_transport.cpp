// UDP transport suite (DESIGN.md §12), registered under the chaos.udp.
// ctest prefix: an in-process loopback cluster — every node's UdpLink,
// RealTransport, and PaxosProcess share one Reactor and exchange datagrams
// through the deterministic lossy-link harness (no real sockets), so the
// whole thing runs byte-reproducibly under ctest and ASan/UBSan.
//
// The headline assertions: a cluster at 20% seeded loss plus duplication
// and reordering still orders every client value with gap-free, identical
// learner logs on all nodes; and a scripted seed-replay produces
// byte-identical fault and delivery logs across two independent runs of the
// same seed. UdpLink unit tests pin the reliability layer itself:
// retransmission repairs reliable bodies under heavy loss, best-effort
// bodies are never mourned, MTU clustering, jumbo handling, datagram
// dedup, and hostile ack fields.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/datagram_faults.hpp"
#include "gossip/hooks.hpp"
#include "overlay/random_overlay.hpp"
#include "paxos/process.hpp"
#include "runtime/lossy_link.hpp"
#include "runtime/real_transport.hpp"
#include "runtime/udp_link.hpp"
#include "semantic/paxos_semantics.hpp"
#include "wire/datagram.hpp"

namespace gossipc::runtime {
namespace {

struct Decision {
    InstanceId instance;
    ValueId value;

    friend bool operator==(const Decision& a, const Decision& b) {
        return a.instance == b.instance && a.value == b.value;
    }
};

enum class Setup { Baseline, Gossip, Semantic };

/// Fast link parameters for tests: tight retransmission timers so lossy
/// runs converge in milliseconds of wall clock, not protocol-scale seconds.
UdpLink::Params test_link_params() {
    UdpLink::Params p;
    p.ack_delay = SimTime::millis(2);
    p.rto_initial = SimTime::millis(15);
    p.rto_sweep = SimTime::millis(5);
    p.keepalive = SimTime::millis(50);
    return p;
}

/// One cluster member hosted inside the test process, talking datagrams
/// through the shared LossyDatagramNetwork.
struct UdpNodeHarness {
    std::unique_ptr<UdpLink> link;
    PassThroughHooks pass_through;
    std::unique_ptr<PaxosSemantics> semantics;
    std::unique_ptr<RealTransport> transport;
    std::unique_ptr<PaxosProcess> proc;
    std::vector<Decision> decisions;
};

class UdpLoopbackCluster {
public:
    UdpLoopbackCluster(int n, Setup setup, std::uint64_t fault_seed,
                       const fault::DatagramFaultSpec& spec = {},
                       std::uint64_t overlay_seed = 42)
        : n_(n), net_(reactor_, n, fault_seed) {
        net_.set_default_fault(spec);
        const Graph overlay = make_connected_overlay(n, overlay_seed);
        for (int i = 0; i < n; ++i) {
            auto node = std::make_unique<UdpNodeHarness>();
            node->link = std::make_unique<UdpLink>(reactor_, i, n, net_.endpoint(i),
                                                   test_link_params());

            PaxosConfig pc;
            pc.n = n;
            pc.id = i;
            pc.coordinator = 0;
            pc.heartbeat_piggyback = setup != Setup::Semantic;

            GossipHooks* hooks = &node->pass_through;
            if (setup == Setup::Semantic) {
                node->semantics = std::make_unique<PaxosSemantics>(
                    i, pc.quorum(), PaxosSemantics::Options{});
                hooks = node->semantics.get();
            }

            RealTransport::Params tp;
            if (setup == Setup::Baseline) {
                tp.mode = RealTransport::Mode::Direct;
            } else {
                tp.mode = RealTransport::Mode::Gossip;
                tp.neighbors = overlay.neighbors(i);
            }
            node->transport = std::make_unique<RealTransport>(reactor_, *node->link,
                                                              std::move(tp), *hooks);
            node->proc = std::make_unique<PaxosProcess>(pc, *node->transport);
            UdpNodeHarness* raw = node.get();
            node->proc->set_delivery_listener(
                [raw](InstanceId instance, const Value& value, CpuContext&) {
                    raw->decisions.push_back(Decision{instance, value.id});
                });
            nodes_.push_back(std::move(node));
        }
    }

    /// UDP has no handshake to await: the harness delivers from the first
    /// datagram, so the stack starts immediately.
    void start() {
        for (auto& node : nodes_) node->proc->post_start();
    }

    void submit(int total) {
        for (int v = 0; v < total; ++v) {
            const int owner = v % n_;
            Value value;
            value.id = ValueId{owner, next_seq_[static_cast<std::size_t>(owner)]++};
            nodes_[static_cast<std::size_t>(owner)]->proc->post_submit(value);
        }
    }

    bool run_until_delivered(int total, SimTime limit = SimTime::seconds(60)) {
        return reactor_.run_until(
            [this, total] {
                for (const auto& node : nodes_) {
                    if (node->decisions.size() < static_cast<std::size_t>(total)) {
                        return false;
                    }
                }
                return true;
            },
            limit);
    }

    /// Every node's sequence is gap-free from instance 1 and identical to
    /// node 0's — the cluster-wide agreement check.
    void expect_agreement(int total) {
        const auto& reference = nodes_[0]->decisions;
        ASSERT_EQ(reference.size(), static_cast<std::size_t>(total));
        for (int i = 0; i < total; ++i) {
            EXPECT_EQ(reference[static_cast<std::size_t>(i)].instance, i + 1)
                << "gap at position " << i;
        }
        for (int node = 1; node < n_; ++node) {
            EXPECT_EQ(nodes_[static_cast<std::size_t>(node)]->decisions, reference)
                << "node " << node << " disagrees with node 0";
        }
    }

    Reactor& reactor() { return reactor_; }
    LossyDatagramNetwork& net() { return net_; }
    UdpNodeHarness& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
    int size() const { return n_; }

private:
    int n_;
    Reactor reactor_;
    LossyDatagramNetwork net_;
    std::vector<std::unique_ptr<UdpNodeHarness>> nodes_;
    std::vector<std::int64_t> next_seq_ = std::vector<std::int64_t>(
        static_cast<std::size_t>(n_), 0);
};

/// 20% loss plus duplication and reordering — the acceptance-criteria
/// fault profile.
fault::DatagramFaultSpec twenty_percent_chaos() {
    fault::DatagramFaultSpec spec;
    spec.loss = 0.20;
    spec.duplicate = 0.10;
    spec.reorder_window = SimTime::millis(2);
    return spec;
}

// -- cluster-level tests ------------------------------------------------------

TEST(UdpTransport, DirectClusterAgreesOnCleanLinks) {
    constexpr int kValues = 60;
    UdpLoopbackCluster cluster(3, Setup::Baseline, /*fault_seed=*/7);
    cluster.start();
    cluster.submit(kValues);
    ASSERT_TRUE(cluster.run_until_delivered(kValues)) << "cluster did not converge";
    cluster.expect_agreement(kValues);
    for (int i = 0; i < cluster.size(); ++i) {
        const auto& c = cluster.node(i).link->counters();
        EXPECT_EQ(c.decode_errors, 0u) << "node " << i;
        EXPECT_GT(c.datagrams_sent, 0u) << "node " << i;
    }
}

TEST(UdpTransport, SemanticClusterAgreesOnCleanLinks) {
    constexpr int kValues = 100;
    UdpLoopbackCluster cluster(5, Setup::Semantic, /*fault_seed=*/7);
    cluster.start();
    cluster.submit(kValues);
    ASSERT_TRUE(cluster.run_until_delivered(kValues)) << "cluster did not converge";
    cluster.expect_agreement(kValues);
}

TEST(UdpTransport, SemanticClusterAgreesAtTwentyPercentLoss) {
    constexpr int kValues = 40;
    UdpLoopbackCluster cluster(5, Setup::Semantic, /*fault_seed=*/11,
                               twenty_percent_chaos());
    cluster.start();
    cluster.submit(kValues);
    ASSERT_TRUE(cluster.run_until_delivered(kValues, SimTime::seconds(90)))
        << "cluster did not converge under 20% loss";
    cluster.expect_agreement(kValues);
    EXPECT_GT(cluster.net().counters().dropped, 0u) << "fault profile never fired";
    EXPECT_GT(cluster.net().counters().duplicated, 0u);
}

TEST(UdpTransport, GossipClusterAgreesAtTwentyPercentLoss) {
    constexpr int kValues = 30;
    UdpLoopbackCluster cluster(5, Setup::Gossip, /*fault_seed=*/13,
                               twenty_percent_chaos());
    cluster.start();
    cluster.submit(kValues);
    ASSERT_TRUE(cluster.run_until_delivered(kValues, SimTime::seconds(90)))
        << "cluster did not converge under 20% loss";
    cluster.expect_agreement(kValues);
}

TEST(UdpTransport, DirectClusterAgreesAtTwentyPercentLoss) {
    // Direct mode has no gossip redundancy: every loss that matters must be
    // repaired by the link's reliability layer alone.
    constexpr int kValues = 30;
    UdpLoopbackCluster cluster(3, Setup::Baseline, /*fault_seed=*/17,
                               twenty_percent_chaos());
    cluster.start();
    cluster.submit(kValues);
    ASSERT_TRUE(cluster.run_until_delivered(kValues, SimTime::seconds(90)))
        << "cluster did not converge under 20% loss";
    cluster.expect_agreement(kValues);
    std::uint64_t repaired = 0;
    for (int i = 0; i < cluster.size(); ++i) {
        const auto& c = cluster.node(i).link->counters();
        repaired += c.retransmits + c.fast_retransmits;
    }
    EXPECT_GT(repaired, 0u) << "20% loss should have exercised retransmission";
}

// -- seed replay --------------------------------------------------------------

/// Runs a fixed, scripted datagram exchange over a fresh harness and returns
/// (fault log, canonical delivery log). The delivery log is a sorted
/// multiset of delivered datagrams — timing decides *when* a datagram
/// lands, the seed alone decides *which* bytes land and how many times.
std::pair<std::string, std::string> scripted_run(std::uint64_t seed) {
    Reactor reactor;
    LossyDatagramNetwork net(reactor, 2, seed);
    fault::DatagramFaultSpec spec;
    spec.loss = 0.30;
    spec.duplicate = 0.20;
    spec.reorder_window = SimTime::millis(1);
    spec.truncate = 0.20;
    net.set_default_fault(spec);

    std::map<std::string, int> delivered;
    net.endpoint(1).set_receive_handler([&](std::span<const std::uint8_t> datagram) {
        char key[64];
        std::snprintf(key, sizeof key, "len=%zu first=%u", datagram.size(),
                      datagram.empty() ? 0u : datagram.front());
        ++delivered[key];
    });

    for (int i = 0; i < 150; ++i) {
        std::vector<std::uint8_t> bytes(
            static_cast<std::size_t>(20 + (i * 7) % 400),
            static_cast<std::uint8_t>(i));
        EXPECT_TRUE(net.endpoint(0).send(1, bytes)) << "send " << i;
    }
    // Drain: base delay 100us + reorder window 1ms + dup delays; 100ms of
    // wall clock is orders of magnitude past the last deadline.
    reactor.run_until([] { return false; }, SimTime::millis(100));

    std::string event_log;
    for (const auto& [key, count] : delivered) {
        event_log += key;
        event_log += " x";
        event_log += std::to_string(count);
        event_log += '\n';
    }
    return {net.fault_log(), event_log};
}

TEST(UdpTransport, SeedReplayProducesByteIdenticalFaultAndEventLogs) {
    const auto [faults_a, events_a] = scripted_run(2026);
    const auto [faults_b, events_b] = scripted_run(2026);
    EXPECT_FALSE(faults_a.empty()) << "fault profile never fired";
    EXPECT_EQ(faults_a, faults_b) << "fault log is not a pure function of the seed";
    EXPECT_EQ(events_a, events_b) << "delivery multiset is not a pure function of the seed";

    // A different seed draws a different fate stream (with overwhelming
    // probability over 150 datagrams and four fault classes).
    const auto [faults_c, events_c] = scripted_run(2027);
    EXPECT_NE(faults_a, faults_c);
}

// -- UdpLink unit tests -------------------------------------------------------

/// Two links over a lossy harness, bodies recorded per receiver.
struct LinkPair {
    explicit LinkPair(std::uint64_t seed, const fault::DatagramFaultSpec& spec,
                      UdpLink::Params params = test_link_params())
        : net(reactor, 2, seed),
          a(reactor, 0, 2, net.endpoint(0), params),
          b(reactor, 1, 2, net.endpoint(1), params) {
        net.set_default_fault(spec);
        a.link(1);
        b.link(0);
        b.set_body_handler([this](ProcessId from, std::span<const std::uint8_t> bytes) {
            (void)from;
            received_by_b.emplace_back(bytes.begin(), bytes.end());
        });
        a.set_body_handler([this](ProcessId from, std::span<const std::uint8_t> bytes) {
            (void)from;
            received_by_a.emplace_back(bytes.begin(), bytes.end());
        });
    }

    Reactor reactor;
    LossyDatagramNetwork net;
    UdpLink a;
    UdpLink b;
    std::vector<std::vector<std::uint8_t>> received_by_a;
    std::vector<std::vector<std::uint8_t>> received_by_b;
};

std::vector<std::uint8_t> test_body(int i, std::size_t size = 32) {
    std::vector<std::uint8_t> body(size, static_cast<std::uint8_t>(i));
    body[0] = static_cast<std::uint8_t>(i >> 8);
    return body;
}

TEST(UdpLink, ReliableBodiesSurviveHeavyLoss) {
    constexpr int kBodies = 100;
    fault::DatagramFaultSpec spec;
    spec.loss = 0.5;
    LinkPair pair(31, spec);
    for (int i = 0; i < kBodies; ++i) {
        ASSERT_TRUE(pair.a.send_body(1, test_body(i), /*reliable=*/true));
    }
    ASSERT_TRUE(pair.reactor.run_until(
        [&] { return pair.received_by_b.size() >= kBodies; }, SimTime::seconds(30)))
        << "reliability layer did not repair 50% loss; got "
        << pair.received_by_b.size();
    // Exactly once: the rel_id dedup absorbs every retransmission overlap.
    EXPECT_EQ(pair.received_by_b.size(), static_cast<std::size_t>(kBodies));
    const auto& c = pair.a.counters();
    EXPECT_GT(c.retransmits + c.fast_retransmits, 0u);
    // Everything reliable was eventually acknowledged.
    ASSERT_TRUE(pair.reactor.run_until([&] { return pair.a.unacked(1) == 0; },
                                       SimTime::seconds(30)));
    EXPECT_EQ(c.reliable_acked, static_cast<std::uint64_t>(kBodies));
}

TEST(UdpLink, BestEffortBodiesAreNotRepaired) {
    constexpr int kBodies = 200;
    fault::DatagramFaultSpec spec;
    spec.loss = 0.5;
    LinkPair pair(33, spec);
    for (int i = 0; i < kBodies; ++i) {
        ASSERT_TRUE(pair.a.send_body(1, test_body(i), /*reliable=*/false));
    }
    pair.reactor.run_until([] { return false; }, SimTime::millis(300));
    // Losses stay lost (no retransmission machinery ran), and at 50% loss
    // over the deterministic seed some datagrams certainly dropped.
    EXPECT_LT(pair.received_by_b.size(), static_cast<std::size_t>(kBodies));
    EXPECT_GT(pair.received_by_b.size(), 0u);
    const auto& c = pair.a.counters();
    EXPECT_EQ(c.retransmits, 0u);
    EXPECT_EQ(c.fast_retransmits, 0u);
    EXPECT_EQ(pair.a.unacked(1), 0u);
}

TEST(UdpLink, ClustersSmallBodiesIntoFewDatagrams) {
    LinkPair pair(35, fault::DatagramFaultSpec{});
    constexpr int kBodies = 50;  // 50 * (32 + 9) + 24 ≈ 2.1 KB ≈ 2 datagrams
    for (int i = 0; i < kBodies; ++i) {
        ASSERT_TRUE(pair.a.send_body(1, test_body(i), /*reliable=*/false));
    }
    ASSERT_TRUE(pair.reactor.run_until(
        [&] { return pair.received_by_b.size() >= kBodies; }, SimTime::seconds(10)));
    const auto& c = pair.a.counters();
    EXPECT_EQ(c.bodies_sent, static_cast<std::uint64_t>(kBodies));
    // All 50 queued in one reactor turn, so they cluster tightly under the
    // 1400-byte MTU budget (keepalives/acks ride separately).
    EXPECT_LE(c.datagrams_sent - c.acks_only_sent, 4u);
    EXPECT_EQ(c.jumbo_datagrams, 0u);
}

TEST(UdpLink, JumboBodyTravelsAloneAndOversizeIsRejected) {
    LinkPair pair(37, fault::DatagramFaultSpec{});
    // Bigger than the MTU budget but within the harness's 64 KiB datagram
    // cap: sent as one jumbo datagram.
    ASSERT_TRUE(pair.a.send_body(1, test_body(1, 5000), /*reliable=*/true));
    ASSERT_TRUE(pair.reactor.run_until([&] { return !pair.received_by_b.empty(); },
                                       SimTime::seconds(10)));
    EXPECT_EQ(pair.received_by_b[0].size(), 5000u);
    EXPECT_EQ(pair.a.counters().jumbo_datagrams, 1u);
    // Beyond the channel cap: rejected up front, counted, never queued.
    EXPECT_FALSE(pair.a.send_body(1, test_body(2, 70 * 1024), /*reliable=*/true));
    EXPECT_GT(pair.a.counters().send_failures, 0u);
    EXPECT_GT(pair.a.counters().reliable_dropped, 0u);
}

TEST(UdpLink, DuplicatedDatagramsDeliverBodiesOnce) {
    constexpr int kBodies = 40;
    fault::DatagramFaultSpec spec;
    spec.duplicate = 1.0;  // every datagram arrives twice
    LinkPair pair(39, spec);
    for (int i = 0; i < kBodies; ++i) {
        ASSERT_TRUE(pair.a.send_body(1, test_body(i), /*reliable=*/false));
    }
    pair.reactor.run_until([] { return false; }, SimTime::millis(200));
    EXPECT_EQ(pair.received_by_b.size(), static_cast<std::size_t>(kBodies));
    EXPECT_GT(pair.b.counters().duplicate_datagrams, 0u);
}

TEST(UdpLink, TruncatedDatagramsAreRejectedCleanly) {
    constexpr int kBodies = 60;
    fault::DatagramFaultSpec spec;
    spec.truncate = 0.5;
    LinkPair pair(41, spec);
    for (int i = 0; i < kBodies; ++i) {
        ASSERT_TRUE(pair.a.send_body(1, test_body(i), /*reliable=*/true));
    }
    // Truncated copies fail to decode and are dropped whole; retransmission
    // still carries every reliable body across eventually.
    ASSERT_TRUE(pair.reactor.run_until(
        [&] { return pair.received_by_b.size() >= kBodies; }, SimTime::seconds(30)));
    EXPECT_EQ(pair.received_by_b.size(), static_cast<std::size_t>(kBodies));
    EXPECT_GT(pair.b.counters().decode_errors, 0u) << "truncation never fired";
    EXPECT_GT(pair.net.counters().truncated, 0u);
}

TEST(UdpLink, HostileAckFieldsAreHarmless) {
    LinkPair pair(43, fault::DatagramFaultSpec{});
    // Inject datagrams with absurd ack state: far-future cumulative ack,
    // all selective-ack bits set, and an unknown sender id.
    wire::DatagramHeader hostile;
    hostile.sender = 1;
    hostile.seq = 0;
    hostile.ack = 0xffffffffu;
    hostile.ack_bits = 0xffffffffu;
    const auto hostile_bytes = wire::encode_datagram(hostile, {});
    ASSERT_TRUE(pair.net.endpoint(1).send(0, hostile_bytes));

    wire::DatagramHeader impostor = hostile;
    impostor.sender = 99;  // out of range
    const auto impostor_bytes = wire::encode_datagram(impostor, {});
    ASSERT_TRUE(pair.net.endpoint(1).send(0, impostor_bytes));
    pair.reactor.run_until([] { return false; }, SimTime::millis(20));
    EXPECT_GE(pair.a.counters().decode_errors, 1u) << "impostor not rejected";

    // The link still works: reliable traffic flows and is acknowledged.
    for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(pair.a.send_body(1, test_body(i), /*reliable=*/true));
    }
    ASSERT_TRUE(pair.reactor.run_until(
        [&] { return pair.received_by_b.size() >= 20 && pair.a.unacked(1) == 0; },
        SimTime::seconds(10)));
    EXPECT_EQ(pair.received_by_b.size(), 20u);
}

TEST(UdpLink, PeerUpFlipsOnFirstDatagramHeard) {
    LinkPair pair(45, fault::DatagramFaultSpec{});
    // link() in the harness ctor sent introductions both ways already;
    // peer_up flips as soon as they land.
    ASSERT_TRUE(pair.reactor.run_until(
        [&] { return pair.a.peer_up(1) && pair.b.peer_up(0); }, SimTime::seconds(5)));
    EXPECT_FALSE(pair.a.peer_up(0));  // self is never "up"
    EXPECT_FALSE(pair.a.peer_up(99));
}

TEST(UdpLink, ForceReliableRepairsEverything) {
    constexpr int kBodies = 50;
    fault::DatagramFaultSpec spec;
    spec.loss = 0.4;
    UdpLink::Params params = test_link_params();
    params.force_reliable = true;  // the bench's TCP-like configuration
    LinkPair pair(47, spec, params);
    for (int i = 0; i < kBodies; ++i) {
        ASSERT_TRUE(pair.a.send_body(1, test_body(i), /*reliable=*/false));
    }
    ASSERT_TRUE(pair.reactor.run_until(
        [&] { return pair.received_by_b.size() >= kBodies; }, SimTime::seconds(30)))
        << "force_reliable did not repair losses";
    EXPECT_EQ(pair.received_by_b.size(), static_cast<std::size_t>(kBodies));
}

// -- Satellite: RTO backoff across partition/heal -----------------------------

// Across a partition the exponential backoff must stop at rto_max (not grow
// unbounded), and after the heal every reliable body must still come through.
TEST(UdpLink, RtoBackoffCapsAtMaxAcrossPartitionAndHeal) {
    UdpLink::Params params = test_link_params();
    params.rto_initial = SimTime::millis(5);
    params.rto_max = SimTime::millis(40);
    params.rto_sweep = SimTime::millis(2);
    LinkPair pair(83, fault::DatagramFaultSpec{}, params);

    // Total blackout in both directions: bodies sent now can only back off.
    fault::DatagramFaultSpec blackout;
    blackout.loss = 1.0;
    pair.net.set_link_fault(0, 1, blackout);
    pair.net.set_link_fault(1, 0, blackout);
    constexpr int kBodies = 5;
    for (int i = 0; i < kBodies; ++i) {
        ASSERT_TRUE(pair.a.send_body(1, test_body(i), /*reliable=*/true));
    }
    pair.reactor.run_until([] { return false; }, SimTime::millis(600));
    const UdpLink::PeerStats mid = pair.a.peer_stats(1);
    EXPECT_EQ(mid.unacked, static_cast<std::size_t>(kBodies));
    EXPECT_EQ(mid.max_rto, params.rto_max) << "backoff did not cap at rto_max";

    pair.net.clear_link_fault(0, 1);
    pair.net.clear_link_fault(1, 0);
    ASSERT_TRUE(pair.reactor.run_until(
        [&] { return pair.received_by_b.size() >= kBodies && pair.a.unacked(1) == 0; },
        SimTime::seconds(10)))
        << "bodies did not recover after heal";
    EXPECT_EQ(pair.received_by_b.size(), static_cast<std::size_t>(kBodies));
}

// A long ack-less partition with a tiny seq->rel history must evict the
// fast-retransmit hints (bounded memory) without losing any reliable body:
// the RTO path owns delivery, the history is only an optimization.
TEST(UdpLink, SeqHistoryEvictionKeepsReliableDeliveryIntact) {
    UdpLink::Params params = test_link_params();
    params.rto_initial = SimTime::millis(5);
    params.rto_max = SimTime::millis(20);
    params.rto_sweep = SimTime::millis(2);
    params.seq_history = 4;
    LinkPair pair(89, fault::DatagramFaultSpec{}, params);

    fault::DatagramFaultSpec blackout;
    blackout.loss = 1.0;
    pair.net.set_link_fault(1, 0, blackout);  // acks never return
    constexpr int kBodies = 12;
    for (int i = 0; i < kBodies; ++i) {
        ASSERT_TRUE(pair.a.send_body(1, test_body(i), /*reliable=*/true));
    }
    pair.reactor.run_until([] { return false; }, SimTime::millis(400));
    EXPECT_GT(pair.a.counters().seq_history_evictions, 0u)
        << "cap never hit despite retransmission pressure";

    pair.net.clear_link_fault(1, 0);
    ASSERT_TRUE(pair.reactor.run_until([&] { return pair.a.unacked(1) == 0; },
                                       SimTime::seconds(10)));
    // Dedup on the receiver must survive the eviction churn: each body once.
    EXPECT_EQ(pair.received_by_b.size(), static_cast<std::size_t>(kBodies));
}

// The retransmission jitter is a pure function of (self, peer, rel_id,
// backoff stage) — byte-identical across link incarnations — and bounded by
// rto_jitter_max; distinct rel_ids must not all share one offset.
TEST(UdpLink, RtoJitterIsDeterministicBoundedAndSpread) {
    const UdpLink::Params params = test_link_params();
    Reactor reactor;
    LossyDatagramNetwork net(reactor, 2, 7);
    UdpLink first(reactor, 0, 2, net.endpoint(0), params);
    UdpLink second(reactor, 0, 2, net.endpoint(1), params);

    bool varied = false;
    SimTime previous = SimTime::nanos(-1);
    for (std::uint32_t rel = 1; rel <= 64; ++rel) {
        for (const SimTime rto : {params.rto_initial, params.rto_initial * 2}) {
            const SimTime j = first.rto_jitter(1, rel, rto);
            EXPECT_EQ(j, second.rto_jitter(1, rel, rto))
                << "jitter is not a pure function of its inputs";
            EXPECT_GE(j, SimTime::zero());
            EXPECT_LE(j, params.rto_jitter_max);
            if (previous.as_nanos() >= 0 && j != previous) varied = true;
            previous = j;
        }
    }
    EXPECT_TRUE(varied) << "every deadline drew the same jitter";
}

// A recreated sender link (bumped epoch) must be treated as a fresh
// incarnation: its restarted rel_ids deliver instead of being swallowed by
// dedup state from the previous life.
TEST(UdpLink, EpochBumpRestartsIncarnationAndDelivers) {
    UdpLink::Params params = test_link_params();
    Reactor reactor;
    LossyDatagramNetwork net(reactor, 2, 11);
    UdpLink b(reactor, 1, 2, net.endpoint(1), params);
    std::vector<std::vector<std::uint8_t>> received;
    b.set_body_handler([&](ProcessId, std::span<const std::uint8_t> bytes) {
        received.emplace_back(bytes.begin(), bytes.end());
    });
    b.link(0);

    auto a = std::make_unique<UdpLink>(reactor, 0, 2, net.endpoint(0), params);
    a->link(1);
    ASSERT_TRUE(a->send_body(1, test_body(1), /*reliable=*/true));
    ASSERT_TRUE(reactor.run_until([&] { return received.size() >= 1; },
                                  SimTime::seconds(5)));

    // Same endpoint, next incarnation: rel_id/seq counters restart at 1.
    params.epoch = 1;
    a = std::make_unique<UdpLink>(reactor, 0, 2, net.endpoint(0), params);
    a->link(1);
    ASSERT_TRUE(a->send_body(1, test_body(2), /*reliable=*/true));
    ASSERT_TRUE(reactor.run_until([&] { return received.size() >= 2; },
                                  SimTime::seconds(5)))
        << "fresh incarnation's first body was swallowed as a duplicate";
    EXPECT_EQ(b.counters().epoch_resets, 1u);
    EXPECT_EQ(received[1], test_body(2));
}

}  // namespace
}  // namespace gossipc::runtime
