// Property tests: gossip dissemination coverage as a function of injected
// loss — the redundancy mechanism the paper's reliability results rest on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gossip/gossip_node.hpp"
#include "net/network.hpp"
#include "overlay/random_overlay.hpp"
#include "sim/simulator.hpp"

namespace gossipc {
namespace {

class Payload final : public MessageBody {
public:
    std::uint32_t wire_size() const override { return 64; }
    std::string describe() const override { return "payload"; }
};

struct Coverage {
    double fraction = 0.0;  ///< deliveries / (messages * nodes)
    std::uint64_t transmissions = 0;
};

Coverage measure_coverage(int n, double loss, std::uint64_t seed, int messages) {
    Simulator sim;
    Network::Params net_params;
    net_params.seed = seed;
    Network net(sim, LatencyModel::aws(), n, net_params);
    const Graph overlay = make_connected_overlay(n, seed);
    for (const auto& [a, b] : overlay.edges()) net.allow_link(a, b);
    if (loss > 0) net.set_uniform_loss(loss);
    PassThroughHooks hooks;
    std::vector<std::unique_ptr<GossipNode>> nodes;
    std::uint64_t delivered = 0;
    for (ProcessId id = 0; id < n; ++id) {
        nodes.push_back(std::make_unique<GossipNode>(net.node(id), overlay.neighbors(id),
                                                     GossipNode::Params{}, hooks));
        nodes.back()->set_deliver(
            [&delivered](const GossipAppMessage&, CpuContext&) { ++delivered; });
    }
    for (int m = 1; m <= messages; ++m) {
        nodes[static_cast<std::size_t>(m % n)]->post_broadcast([&] {
            GossipAppMessage msg;
            msg.id = static_cast<GossipMsgId>(m) * 0x9e3779b97f4a7c15ULL;
            msg.origin = static_cast<ProcessId>(m % n);
            msg.payload = std::make_shared<Payload>();
            return msg;
        }());
    }
    sim.run_until(SimTime::seconds(5));
    Coverage c;
    c.fraction = static_cast<double>(delivered) /
                 (static_cast<double>(messages) * static_cast<double>(n));
    c.transmissions = net.total_transmissions();
    return c;
}

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, CoverageDegradesGracefully) {
    const double loss = GetParam();
    const auto c = measure_coverage(53, loss, 11, 40);
    if (loss <= 0.10) {
        // Paper Section 4.5: up to ~10% loss, gossip redundancy masks the
        // drops almost completely.
        EXPECT_GT(c.fraction, 0.99) << "loss " << loss;
    } else if (loss <= 0.30) {
        EXPECT_GT(c.fraction, 0.80) << "loss " << loss;
    } else {
        // Even at 50% loss a majority of deliveries still happen.
        EXPECT_GT(c.fraction, 0.40) << "loss " << loss;
    }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.05, 0.10, 0.20, 0.30, 0.50));

TEST(GossipReliabilityTest, ZeroLossIsFullCoverage) {
    const auto c = measure_coverage(30, 0.0, 3, 25);
    EXPECT_DOUBLE_EQ(c.fraction, 1.0);
}

TEST(GossipReliabilityTest, RedundancyCostsTransmissions) {
    // Transmissions per broadcast are ~2|E| (each edge used at most once in
    // each direction), i.e. ~degree copies per node — the redundancy the
    // paper quantifies in Section 4.3.
    const int n = 53;
    const Graph overlay = make_connected_overlay(n, 11);
    const auto c = measure_coverage(n, 0.0, 11, 40);
    const double per_broadcast = static_cast<double>(c.transmissions) / 40.0;
    EXPECT_GT(per_broadcast, static_cast<double>(overlay.edge_count()));
    EXPECT_LE(per_broadcast, 2.0 * static_cast<double>(overlay.edge_count()));
}

TEST(GossipReliabilityTest, HigherDegreeMasksMoreLoss) {
    // Same loss, denser overlay -> better coverage (redundancy exponential
    // in degree).
    Simulator sim;
    const double loss = 0.35;
    auto run = [&](int k) {
        Simulator local_sim;
        Network net(local_sim, LatencyModel::aws(), 40, {});
        const Graph overlay = make_random_overlay(40, k, 21);
        for (const auto& [a, b] : overlay.edges()) net.allow_link(a, b);
        net.set_uniform_loss(loss);
        PassThroughHooks hooks;
        std::vector<std::unique_ptr<GossipNode>> nodes;
        std::uint64_t delivered = 0;
        for (ProcessId id = 0; id < 40; ++id) {
            nodes.push_back(std::make_unique<GossipNode>(net.node(id), overlay.neighbors(id),
                                                         GossipNode::Params{}, hooks));
            nodes.back()->set_deliver(
                [&delivered](const GossipAppMessage&, CpuContext&) { ++delivered; });
        }
        for (int m = 1; m <= 30; ++m) {
            GossipAppMessage msg;
            msg.id = static_cast<GossipMsgId>(m) * 0x9e3779bULL;
            msg.origin = 0;
            msg.payload = std::make_shared<Payload>();
            nodes[0]->post_broadcast(msg);
        }
        local_sim.run_until(SimTime::seconds(5));
        return static_cast<double>(delivered) / (30.0 * 40.0);
    };
    EXPECT_GE(run(6), run(2));
}

}  // namespace
}  // namespace gossipc
