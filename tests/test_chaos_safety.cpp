// Chaos safety suite: Paxos must preserve agreement, integrity, and gap-free
// delivery while a seeded fault schedule crashes processes (with and without
// durable-state loss), partitions minorities, degrades links, and churns the
// overlay. Every run is replayable from (chaos_seed, profile) — a test
// failure here prints the pair to reproduce it exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/semantic_gossip.hpp"

namespace gossipc {
namespace {

ChaosProfile profile_by_name(const std::string& name) {
    if (name == "light") return ChaosProfile::light();
    if (name == "heavy") return ChaosProfile::heavy();
    return ChaosProfile::moderate();
}

ExperimentConfig chaos_config(Setup setup, const std::string& profile, std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = 13;
    cfg.total_rate = 52.0;
    cfg.warmup = SimTime::seconds(0.25);
    // The chaos window is [250ms, 2.25s]; measure covers it entirely and the
    // drain leaves ample fault-free time for repair to close every gap.
    cfg.measure = SimTime::seconds(2);
    cfg.drain = SimTime::seconds(3);
    cfg.chaos = profile_by_name(profile);
    cfg.chaos_seed = seed;
    cfg.seed = seed;
    return cfg;
}

struct ChaosEnv {
    Setup setup;
    const char* profile;
    std::uint64_t seed;
};

class ChaosSweep : public ::testing::TestWithParam<ChaosEnv> {};

TEST_P(ChaosSweep, SafetyHoldsUnderChaos) {
    const ChaosEnv env = GetParam();
    const ExperimentConfig cfg = chaos_config(env.setup, env.profile, env.seed);
    Deployment d(cfg);
    const auto result = d.run();

    // The schedule actually did something (replayable via the printed pair).
    EXPECT_GT(result.faults_injected, 0u)
        << "profile=" << env.profile << " chaos_seed=" << env.seed;

    // P-AGR-1 + integrity + gap-free delivery at every process, exactly as
    // in the fault-free safety sweep.
    std::map<InstanceId, ValueId> reference;
    std::uint64_t decided_total = 0;
    for (ProcessId id = 0; id < cfg.n; ++id) {
        auto& learner = d.process(id).learner();
        for (InstanceId i = 1; i < learner.frontier(); ++i) {
            const auto v = learner.decided_value(i);
            ASSERT_TRUE(v.has_value()) << "gap at process " << id << " instance " << i;
            EXPECT_GE(v->id.client, 0);
            EXPECT_LT(v->id.client, cfg.num_clients);
            const auto [it, inserted] = reference.emplace(i, v->id);
            if (!inserted) {
                ASSERT_EQ(it->second, v->id)
                    << "divergent decision at instance " << i << " process " << id
                    << " (profile=" << env.profile << " chaos_seed=" << env.seed << ")";
            }
            ++decided_total;
        }
        EXPECT_EQ(learner.delivered_count(),
                  static_cast<std::uint64_t>(learner.frontier() - 1));
    }
    std::set<ValueId> values;
    for (const auto& [inst, vid] : reference) {
        EXPECT_TRUE(values.insert(vid).second) << "value decided twice";
    }
    EXPECT_GT(decided_total, 0u);

    // Recovery: with every fault healed before the drain, all processes —
    // including crashed, wiped, and partitioned ones — catch back up to the
    // coordinator's frontier (modulo a short repair tail).
    const InstanceId coord_frontier = d.process(0).learner().frontier();
    ASSERT_GT(coord_frontier, 1);
    for (ProcessId id = 0; id < cfg.n; ++id) {
        const InstanceId lag = coord_frontier - d.process(id).learner().frontier();
        EXPECT_LE(lag, 32) << "process " << id << " did not catch up (profile="
                           << env.profile << " chaos_seed=" << env.seed << ")";
    }
}

std::vector<ChaosEnv> chaos_envs() {
    std::vector<ChaosEnv> envs;
    for (const Setup setup : {Setup::Baseline, Setup::Gossip, Setup::SemanticGossip}) {
        for (const char* profile : {"light", "moderate", "heavy"}) {
            for (const std::uint64_t seed : {11ull, 23ull}) {
                envs.push_back(ChaosEnv{setup, profile, seed});
            }
        }
    }
    // A few extra gossip seeds: the overlay setups exercise churn.
    for (const std::uint64_t seed : {37ull, 41ull}) {
        envs.push_back(ChaosEnv{Setup::Gossip, "moderate", seed});
        envs.push_back(ChaosEnv{Setup::SemanticGossip, "heavy", seed});
    }
    return envs;  // 22 seeded (setup, profile) runs
}

INSTANTIATE_TEST_SUITE_P(Profiles, ChaosSweep, ::testing::ValuesIn(chaos_envs()),
                         [](const ::testing::TestParamInfo<ChaosEnv>& info) {
                             const ChaosEnv& e = info.param;
                             std::string name = setup_name(e.setup);
                             name += "_";
                             name += e.profile;
                             name += "_s" + std::to_string(e.seed);
                             return name;
                         });

// Batching under chaos (DESIGN.md §14): the same safety sweep with composite
// proposals on. Decided composites carry synthesized (negative-client) ids,
// so the per-value checks unpack them: components are plain, well-formed
// client values, none ordered twice across the whole decided log.
class ChaosBatchingSweep : public ::testing::TestWithParam<ChaosEnv> {};

TEST_P(ChaosBatchingSweep, SafetyHoldsUnderChaosWithBatching) {
    const ChaosEnv env = GetParam();
    ExperimentConfig cfg = chaos_config(env.setup, env.profile, env.seed);
    cfg.batch_size = 8;
    cfg.total_rate = 260.0;  // enough concurrency that composites actually form
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_GT(result.faults_injected, 0u)
        << "profile=" << env.profile << " chaos_seed=" << env.seed;

    std::map<InstanceId, std::uint64_t> reference;  // instance -> digest
    std::set<ValueId> components;
    std::uint64_t decided_total = 0;
    bool saw_composite = false;
    for (ProcessId id = 0; id < cfg.n; ++id) {
        auto& learner = d.process(id).learner();
        for (InstanceId i = 1; i < learner.frontier(); ++i) {
            const auto v = learner.decided_value(i);
            ASSERT_TRUE(v.has_value()) << "gap at process " << id << " instance " << i;
            const auto [it, inserted] = reference.emplace(i, v->digest());
            ASSERT_EQ(it->second, v->digest())
                << "divergent decision at instance " << i << " process " << id
                << " (profile=" << env.profile << " chaos_seed=" << env.seed << ")";
            if (!inserted) continue;  // count each instance's values once
            ++decided_total;
            const std::vector<Value> units =
                v->is_batch() ? v->batch : std::vector<Value>{*v};
            if (v->is_batch()) {
                saw_composite = true;
                EXPECT_LT(v->id.client, 0);
            }
            for (const Value& u : units) {
                EXPECT_FALSE(u.is_batch()) << "nested composite decided";
                EXPECT_GE(u.id.client, 0);
                EXPECT_LT(u.id.client, cfg.num_clients);
                EXPECT_TRUE(components.insert(u.id).second)
                    << "client value ordered twice (instance " << i << ")";
            }
        }
        EXPECT_EQ(learner.delivered_count(),
                  static_cast<std::uint64_t>(learner.frontier() - 1));
    }
    EXPECT_GT(decided_total, 0u);
    EXPECT_TRUE(saw_composite)
        << "batch_size=8 run never decided a composite; cell not exercising batching";

    const InstanceId coord_frontier = d.process(0).learner().frontier();
    ASSERT_GT(coord_frontier, 1);
    for (ProcessId id = 0; id < cfg.n; ++id) {
        const InstanceId lag = coord_frontier - d.process(id).learner().frontier();
        EXPECT_LE(lag, 32) << "process " << id << " did not catch up (profile="
                           << env.profile << " chaos_seed=" << env.seed << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ChaosBatchingSweep,
    ::testing::Values(ChaosEnv{Setup::Baseline, "moderate", 11},
                      ChaosEnv{Setup::Gossip, "moderate", 11},
                      ChaosEnv{Setup::Gossip, "heavy", 23},
                      ChaosEnv{Setup::SemanticGossip, "moderate", 23}),
    [](const ::testing::TestParamInfo<ChaosEnv>& info) {
        const ChaosEnv& e = info.param;
        std::string name = setup_name(e.setup);
        name += "_";
        name += e.profile;
        name += "_s" + std::to_string(e.seed);
        return name;
    });

// Replay determinism: the acceptance contract of the engine. Two deployments
// built from the same config produce byte-identical injected-fault logs.
TEST(ChaosReplay, FaultLogIsByteIdenticalAcrossRuns) {
    const ExperimentConfig cfg = chaos_config(Setup::Gossip, "moderate", 7);
    Deployment a(cfg);
    const auto ra = a.run();
    Deployment b(cfg);
    const auto rb = b.run();
    ASSERT_FALSE(a.fault_injector()->log().empty());
    EXPECT_EQ(a.fault_injector()->rendered_log(), b.fault_injector()->rendered_log());
    EXPECT_EQ(ra.fault_log, rb.fault_log);
    EXPECT_EQ(ra.fault_log, a.fault_injector()->log());
}

TEST(ChaosReplay, DifferentChaosSeedsGiveDifferentSchedules) {
    ExperimentConfig cfg = chaos_config(Setup::Gossip, "moderate", 7);
    Deployment a(cfg);
    cfg.chaos_seed = 8;
    Deployment b(cfg);
    EXPECT_NE(a.fault_injector()->schedule().describe(),
              b.fault_injector()->schedule().describe());
}

// chaos_seed defaults to the deployment seed, so varying only `seed` still
// varies the chaos — but the pair can be split for controlled sweeps.
TEST(ChaosReplay, ChaosSeedDecoupledFromDeploymentSeed) {
    ExperimentConfig cfg = chaos_config(Setup::Gossip, "moderate", 7);
    cfg.chaos_seed = 99;
    Deployment a(cfg);
    cfg.seed = 8;  // different deployment, same chaos
    Deployment b(cfg);
    EXPECT_EQ(a.fault_injector()->schedule().describe(),
              b.fault_injector()->schedule().describe());
}

// A healed minority partition eventually learns every decision: the explicit
// worst case (five processes dark for a second of decided traffic).
TEST(ChaosHealedPartition, MinoritySideLearnsAllDecisions) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = 13;
    cfg.total_rate = 52.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(2);
    cfg.drain = SimTime::seconds(3);
    const std::vector<ProcessId> side{1, 2, 3, 4, 5};
    cfg.faults.partition(SimTime::millis(500), side);
    cfg.faults.heal(SimTime::millis(1500));
    Deployment d(cfg);
    d.run();

    const InstanceId coord_frontier = d.process(0).learner().frontier();
    ASSERT_GT(coord_frontier, 10);  // the majority kept deciding throughout
    for (const ProcessId p : side) {
        auto& learner = d.process(p).learner();
        EXPECT_EQ(learner.frontier(), coord_frontier) << "process " << p;
        for (InstanceId i = 1; i < learner.frontier(); ++i) {
            ASSERT_TRUE(learner.decided_value(i).has_value())
                << "process " << p << " instance " << i;
        }
    }
}

}  // namespace
}  // namespace gossipc
