// Tests for the Raft-style extension: leader replication over gossip, the
// transferred semantic rules (F1'/F2'/A1'), and the equivalence of classic
// vs semantic behaviour.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "overlay/random_overlay.hpp"
#include "raft/replica.hpp"
#include "raft/semantics.hpp"
#include "sim/simulator.hpp"

namespace gossipc {
namespace {

struct RaftFixture {
    Simulator sim;
    Network net;
    std::vector<std::unique_ptr<GossipHooks>> hooks;
    std::vector<std::unique_ptr<GossipNode>> gnodes;
    std::vector<std::unique_ptr<RaftReplica>> replicas;
    std::vector<std::map<LogIndex, ValueId>> committed;

    RaftFixture(int n, bool semantic, std::uint64_t seed = 5)
        : net(sim, LatencyModel::aws(), n, {}), committed(static_cast<std::size_t>(n)) {
        const Graph overlay = make_connected_overlay(n, seed);
        for (const auto& [a, b] : overlay.edges()) net.allow_link(a, b);
        RaftConfig base;
        base.n = n;
        base.leader = 0;
        for (ProcessId id = 0; id < n; ++id) {
            if (semantic) {
                hooks.push_back(
                    std::make_unique<RaftSemantics>(id, base.quorum(), RaftSemantics::Options{}));
            } else {
                hooks.push_back(std::make_unique<PassThroughHooks>());
            }
            gnodes.push_back(std::make_unique<GossipNode>(net.node(id), overlay.neighbors(id),
                                                          GossipNode::Params{}, *hooks.back()));
            RaftConfig rc = base;
            rc.id = id;
            replicas.push_back(std::make_unique<RaftReplica>(rc, *gnodes.back()));
            replicas.back()->set_commit_listener(
                [this, id](LogIndex index, const Value& v, CpuContext&) {
                    committed[static_cast<std::size_t>(id)][index] = v.id;
                });
        }
    }

    void submit(ProcessId via, std::int32_t client, std::int64_t seq) {
        Value v;
        v.id = ValueId{client, seq};
        v.size_bytes = 1024;
        replicas[static_cast<std::size_t>(via)]->post_submit(v);
    }

    std::uint64_t total_arrivals() const {
        std::uint64_t total = 0;
        for (ProcessId id = 0; id < net.size(); ++id) total += net.node(id).counters().arrivals;
        return total;
    }
};

TEST(RaftTest, LeaderReplicatesInOrderEverywhere) {
    RaftFixture f(7, /*semantic=*/false);
    for (int s = 1; s <= 10; ++s) f.submit(0, 0, s);
    f.sim.run_until(SimTime::seconds(3));
    for (int r = 0; r < 7; ++r) {
        ASSERT_EQ(f.committed[static_cast<std::size_t>(r)].size(), 10u) << "replica " << r;
        for (LogIndex i = 1; i <= 10; ++i) {
            EXPECT_EQ(f.committed[static_cast<std::size_t>(r)][i], (ValueId{0, i}));
        }
    }
}

TEST(RaftTest, FollowersForwardClientValues) {
    RaftFixture f(7, false);
    for (int s = 1; s <= 5; ++s) f.submit(static_cast<ProcessId>(s % 7), 1, s);
    f.sim.run_until(SimTime::seconds(3));
    EXPECT_EQ(f.committed[0].size(), 5u);
    EXPECT_EQ(f.replicas[0]->counters().appends_sent, 5u);
}

TEST(RaftTest, DuplicateForwardsReplicatedOnce) {
    RaftFixture f(5, false);
    for (int i = 0; i < 3; ++i) f.submit(1, 2, 7);  // same value thrice
    f.sim.run_until(SimTime::seconds(3));
    EXPECT_EQ(f.committed[0].size(), 1u);
}

TEST(RaftTest, AllReplicasAgree) {
    RaftFixture f(9, false);
    for (int s = 1; s <= 20; ++s) f.submit(static_cast<ProcessId>(s % 9), 3, s);
    f.sim.run_until(SimTime::seconds(4));
    for (int r = 1; r < 9; ++r) {
        EXPECT_EQ(f.committed[static_cast<std::size_t>(r)], f.committed[0]) << "replica " << r;
    }
    EXPECT_EQ(f.replicas[0]->commit_frontier(), 21);
}

TEST(RaftTest, SemanticVariantCommitsSameLog) {
    RaftFixture classic(9, false), semantic(9, true);
    for (int s = 1; s <= 20; ++s) {
        classic.submit(static_cast<ProcessId>(s % 9), 3, s);
        semantic.submit(static_cast<ProcessId>(s % 9), 3, s);
    }
    classic.sim.run_until(SimTime::seconds(4));
    semantic.sim.run_until(SimTime::seconds(4));
    EXPECT_EQ(classic.committed[0].size(), 20u);
    EXPECT_EQ(semantic.committed[0].size(), 20u);
    // Committed value sets agree (index assignment may differ: forwarding
    // order can vary with message flow).
    std::set<ValueId> a, b;
    for (const auto& [i, v] : classic.committed[0]) a.insert(v);
    for (const auto& [i, v] : semantic.committed[0]) b.insert(v);
    EXPECT_EQ(a, b);
}

TEST(RaftTest, SemanticVariantUsesFewerMessages) {
    RaftFixture classic(13, false, 9), semantic(13, true, 9);
    for (int s = 1; s <= 40; ++s) {
        classic.submit(0, 0, s);
        semantic.submit(0, 0, s);
    }
    classic.sim.run_until(SimTime::seconds(4));
    semantic.sim.run_until(SimTime::seconds(4));
    ASSERT_EQ(classic.committed[5].size(), 40u);
    ASSERT_EQ(semantic.committed[5].size(), 40u);
    EXPECT_LT(semantic.total_arrivals(), classic.total_arrivals());
    const auto& stats = static_cast<RaftSemantics&>(*semantic.hooks[0]).stats();
    EXPECT_GT(stats.filtered_acks, 0u);
}

TEST(RaftTest, RejectsBadConfig) {
    Simulator sim;
    Network net(sim, LatencyModel::aws(), 3, {});
    PassThroughHooks hooks;
    GossipNode g(net.node(0), {}, GossipNode::Params{}, hooks);
    RaftConfig rc;
    rc.n = 0;
    rc.id = 0;
    EXPECT_THROW(RaftReplica(rc, g), std::invalid_argument);
}

// --- semantic rules at the unit level ---

GossipAppMessage wrap_raft(RaftMessagePtr msg) {
    GossipAppMessage app;
    app.id = msg->unique_key();
    app.origin = msg->sender();
    app.payload = std::move(msg);
    return app;
}

TEST(RaftSemanticsTest, CommitSupersedesAcks) {
    RaftSemantics sem(0, 3, RaftSemantics::Options{});
    EXPECT_TRUE(sem.validate(wrap_raft(std::make_shared<CommitMsg>(0, 1, 5, 42)), 9));
    EXPECT_FALSE(sem.validate(wrap_raft(std::make_shared<AckMsg>(1, 1, 5, 42)), 9));
    EXPECT_EQ(sem.stats().filtered_acks, 1u);
    EXPECT_TRUE(sem.validate(wrap_raft(std::make_shared<AckMsg>(1, 1, 6, 42)), 9));
}

TEST(RaftSemanticsTest, MajorityAcksSupersedeFurtherAcks) {
    RaftSemantics sem(0, 3, RaftSemantics::Options{});
    for (ProcessId s = 0; s < 3; ++s) {
        EXPECT_TRUE(sem.validate(wrap_raft(std::make_shared<AckMsg>(s, 1, 5, 42)), 9));
    }
    EXPECT_FALSE(sem.validate(wrap_raft(std::make_shared<AckMsg>(3, 1, 5, 42)), 9));
}

TEST(RaftSemanticsTest, AggregationRoundTrip) {
    RaftSemantics sem(0, 5, RaftSemantics::Options{});
    std::vector<GossipAppMessage> pending;
    for (ProcessId s = 1; s <= 3; ++s) {
        pending.push_back(wrap_raft(std::make_shared<AckMsg>(s, 1, 5, 42)));
    }
    const std::vector<GossipMsgId> ids{pending[0].id, pending[1].id, pending[2].id};
    const auto out = sem.aggregate(std::move(pending), 9);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].aggregated);
    const auto rebuilt = sem.disaggregate(out[0]);
    ASSERT_EQ(rebuilt.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(rebuilt[i].id, ids[i]);
}

TEST(RaftSemanticsTest, DistinctIndicesNotMerged) {
    RaftSemantics sem(0, 5, RaftSemantics::Options{});
    std::vector<GossipAppMessage> pending{
        wrap_raft(std::make_shared<AckMsg>(1, 1, 5, 42)),
        wrap_raft(std::make_shared<AckMsg>(2, 1, 6, 42)),
    };
    EXPECT_EQ(sem.aggregate(std::move(pending), 9).size(), 2u);
}

}  // namespace
}  // namespace gossipc
