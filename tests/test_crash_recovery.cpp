// Crash-recovery tests (the paper's system model, Section 2.1): processes
// crash, later recover, and rejoin the protocol; durable (acceptor/learner)
// state survives, in-flight volatile state does not.
#include <gtest/gtest.h>

#include <map>

#include "core/semantic_gossip.hpp"

namespace gossipc {
namespace {

ExperimentConfig gossip_config(int n = 13) {
    ExperimentConfig cfg;
    cfg.setup = Setup::SemanticGossip;
    cfg.n = n;
    cfg.total_rate = 52.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(2);
    cfg.drain = SimTime::seconds(2);
    return cfg;
}

TEST(CrashRecoveryTest, MinorityCrashDoesNotBlockConsensus) {
    auto cfg = gossip_config();
    cfg.failover = true;
    cfg.drain = SimTime::seconds(5);
    Deployment d(cfg);
    d.start_processes();
    d.workload().start();
    // Crash 3 of 13 processes early — including the coordinator itself;
    // quorum (7) remains available and failover elects a successor. Clients
    // attached to crashed hosts lose service (expected).
    d.simulator().run_until(SimTime::seconds(0.5));
    for (const ProcessId p : {0, 4, 8}) d.network().node(p).crash();
    d.simulator().run_until(d.workload().total_duration());
    const auto result = d.collect();
    // At most 3/13 of values (the crashed hosts' clients) may be unordered.
    EXPECT_LE(result.workload.not_ordered, result.workload.submitted_in_window * 3 / 13 + 13);
    EXPECT_GT(result.workload.completed, 0u);
    // A successor took over and kept deciding.
    EXPECT_GE(result.failover.takeovers, 1u);
    EXPECT_GT(d.process(1).learner().delivered_count(), 20u);
}

TEST(CrashRecoveryTest, RecoveredProcessRejoinsAndCatchesUp) {
    auto cfg = gossip_config();
    Deployment d(cfg);
    d.start_processes();
    d.workload().start();
    d.simulator().run_until(SimTime::seconds(0.5));
    d.network().node(5).crash();
    d.simulator().run_until(SimTime::seconds(1.5));
    d.network().node(5).recover();
    d.simulator().run_until(d.workload().total_duration() + SimTime::seconds(6));
    // Gap repair lets the recovered learner catch up with the coordinator.
    const auto coordinator_frontier = d.process(0).learner().frontier();
    const auto recovered_frontier = d.process(5).learner().frontier();
    EXPECT_GE(recovered_frontier + 5, coordinator_frontier);
    // And everything it delivered agrees with the coordinator.
    for (InstanceId i = 1; i < recovered_frontier; ++i) {
        const auto a = d.process(5).learner().decided_value(i);
        const auto b = d.process(0).learner().decided_value(i);
        ASSERT_TRUE(a.has_value());
        ASSERT_TRUE(b.has_value());
        EXPECT_EQ(a->id, b->id) << "instance " << i;
    }
}

TEST(CrashRecoveryTest, AcceptorStateSurvivesCrash) {
    // Crash-recovery model: promises/accepted values are durable. Verify at
    // the component level: a crashed node drops traffic but the Acceptor
    // object (stable storage) retains its promise.
    Simulator sim;
    Network net(sim, LatencyModel::aws(), 3, {});
    net.allow_all_links();
    DirectTransport t1(net, 1);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 1;
    pc.timeouts_enabled = false;
    PaxosProcess p1(pc, t1);

    // Promise round 5, then crash and recover: a Phase 2a for round 3 must
    // still be rejected.
    net.node(1).post([&](CpuContext&) {
        p1.acceptor().on_phase1a(5, 1);
    });
    sim.run_until_idle();
    net.node(1).crash();
    net.node(1).recover();
    EXPECT_EQ(p1.acceptor().promise_floor(), 5);
    Value v;
    v.id = ValueId{0, 1};
    EXPECT_FALSE(p1.acceptor().on_phase2a(1, 3, v));
    EXPECT_TRUE(p1.acceptor().on_phase2a(1, 5, v));
}

TEST(CrashRecoveryTest, CoordinatorHandoffAfterCrash) {
    // The configured coordinator crashes permanently; another process takes
    // over with a higher round and continues deciding new values without
    // contradicting old decisions.
    ExperimentConfig cfg = gossip_config();
    cfg.total_rate = 26.0;
    Deployment d(cfg);
    d.start_processes();
    d.workload().start();
    d.simulator().run_until(SimTime::seconds(1.0));
    const auto decided_before = d.process(1).learner().frontier();
    std::map<InstanceId, ValueId> before;
    for (InstanceId i = 1; i < decided_before; ++i) {
        before[i] = d.process(1).learner().decided_value(i)->id;
    }
    d.network().node(0).crash();
    d.process(1).become_coordinator();
    // New values proposed through the new coordinator.
    for (int s = 0; s < 5; ++s) {
        Value v;
        v.id = ValueId{99, s};
        d.process(1).post_submit(v);
    }
    d.simulator().run_until(SimTime::seconds(12));
    auto& learner = d.process(1).learner();
    // Progress resumed.
    EXPECT_GT(learner.frontier(), decided_before);
    // Old decisions intact.
    for (const auto& [inst, vid] : before) {
        ASSERT_TRUE(learner.decided_value(inst).has_value());
        EXPECT_EQ(learner.decided_value(inst)->id, vid);
    }
    // The new coordinator's own values got decided.
    int own = 0;
    for (InstanceId i = 1; i < learner.frontier(); ++i) {
        if (learner.decided_value(i)->id.client == 99) ++own;
    }
    EXPECT_EQ(own, 5);
}

}  // namespace
}  // namespace gossipc
