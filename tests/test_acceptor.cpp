// Unit tests: acceptor promise/accept rules (classic Paxos, ranged Phase 1).
#include <gtest/gtest.h>

#include "paxos/acceptor.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

using testutil::make_value;

TEST(AcceptorTest, PromisesHigherRoundOnly) {
    Acceptor a;
    EXPECT_TRUE(a.on_phase1a(2, 1).promised);
    EXPECT_EQ(a.promise_floor(), 2);
    EXPECT_FALSE(a.on_phase1a(2, 1).promised);  // same round: already promised
    EXPECT_FALSE(a.on_phase1a(1, 1).promised);  // lower round
    EXPECT_TRUE(a.on_phase1a(5, 1).promised);
    EXPECT_EQ(a.promise_floor(), 5);
}

TEST(AcceptorTest, AcceptsAtOrAbovePromise) {
    Acceptor a;
    a.on_phase1a(3, 1);
    EXPECT_FALSE(a.on_phase2a(1, 2, make_value(0, 1)));  // below promise
    EXPECT_TRUE(a.on_phase2a(1, 3, make_value(0, 1)));   // at promise
    EXPECT_TRUE(a.on_phase2a(2, 4, make_value(0, 2)));   // above promise
}

TEST(AcceptorTest, PerInstanceRoundsIndependent) {
    Acceptor a;
    EXPECT_TRUE(a.on_phase2a(1, 5, make_value(0, 1)));
    // Instance 1 is now at round 5; instance 2 still accepts round 1.
    EXPECT_FALSE(a.on_phase2a(1, 4, make_value(0, 9)));
    EXPECT_TRUE(a.on_phase2a(2, 1, make_value(0, 2)));
}

TEST(AcceptorTest, ReportsAcceptedValuesInPhase1b) {
    Acceptor a;
    const Value v1 = make_value(0, 1);
    const Value v2 = make_value(0, 2);
    a.on_phase2a(1, 1, v1);
    a.on_phase2a(3, 1, v2);
    const auto result = a.on_phase1a(2, 1);
    ASSERT_TRUE(result.promised);
    ASSERT_EQ(result.accepted.size(), 2u);
    EXPECT_EQ(result.accepted[0].instance, 1);
    EXPECT_EQ(result.accepted[0].vround, 1);
    EXPECT_EQ(result.accepted[0].value, v1);
    EXPECT_EQ(result.accepted[1].instance, 3);
    EXPECT_EQ(result.accepted[1].value, v2);
}

TEST(AcceptorTest, Phase1bRangeRespectsFromInstance) {
    Acceptor a;
    a.on_phase2a(1, 1, make_value(0, 1));
    a.on_phase2a(5, 1, make_value(0, 5));
    const auto result = a.on_phase1a(2, 3);  // only instances >= 3
    ASSERT_EQ(result.accepted.size(), 1u);
    EXPECT_EQ(result.accepted[0].instance, 5);
}

TEST(AcceptorTest, ReacceptInHigherRoundOverwrites) {
    Acceptor a;
    const Value v1 = make_value(0, 1);
    const Value v2 = make_value(0, 2);
    a.on_phase2a(1, 1, v1);
    a.on_phase2a(1, 3, v2);
    const auto acc = a.accepted_in(1);
    ASSERT_TRUE(acc.has_value());
    EXPECT_EQ(acc->vround, 3);
    EXPECT_EQ(acc->value, v2);
}

TEST(AcceptorTest, RangedPromiseBlocksAllFutureInstances) {
    Acceptor a;
    a.on_phase1a(10, 1);
    // A Phase 2a from an old round must be rejected in any instance.
    EXPECT_FALSE(a.on_phase2a(1000, 9, make_value(0, 1)));
    EXPECT_TRUE(a.on_phase2a(1000, 10, make_value(0, 1)));
}

TEST(AcceptorTest, ForgetBelowDropsState) {
    Acceptor a;
    for (InstanceId i = 1; i <= 10; ++i) a.on_phase2a(i, 1, make_value(0, i));
    EXPECT_EQ(a.slot_count(), 10u);
    a.forget_below(6);
    EXPECT_EQ(a.slot_count(), 5u);
    EXPECT_FALSE(a.accepted_in(3).has_value());
    EXPECT_TRUE(a.accepted_in(7).has_value());
}

TEST(AcceptorTest, IdempotentReaccept) {
    Acceptor a;
    const Value v = make_value(0, 1);
    EXPECT_TRUE(a.on_phase2a(1, 2, v));
    EXPECT_TRUE(a.on_phase2a(1, 2, v));  // retransmitted 2a re-acked
    EXPECT_EQ(a.accepted_in(1)->value, v);
}

}  // namespace
}  // namespace gossipc
