// Correctness-tooling tests: GC_INVARIANT death tests, the Paxos safety
// monitors tripped by deliberately corrupted protocol state, the
// semantic-gossip soundness checks, and the deployment-level wiring of the
// InvariantChecker observer.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/failover_invariants.hpp"
#include "check/gossip_invariants.hpp"
#include "check/invariant.hpp"
#include "check/paxos_invariants.hpp"
#include "core/experiment.hpp"
#include "gossip/gossip_node.hpp"
#include "net/network.hpp"
#include "paxos/acceptor.hpp"
#include "paxos/learner.hpp"
#include "paxos/process.hpp"
#include "semantic/paxos_semantics.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

using testutil::FakeTransport;
using testutil::make_2b;
using testutil::make_value;
using testutil::wrap;

TEST(InvariantCheckerTest, RunsRegisteredChecks) {
    check::InvariantChecker checker;
    int calls = 0;
    checker.add_check("count", [&calls] { ++calls; });
    checker.add_check("count-again", [&calls] { ++calls; });
    EXPECT_EQ(checker.check_count(), 2u);
    checker.run_all();
    checker.run_all();
    EXPECT_EQ(calls, 4);
    EXPECT_EQ(checker.runs(), 2u);
}

#if GC_ENABLE_INVARIANTS

TEST(InvariantMacroTest, PassingConditionEvaluatesOnceAndContinues) {
    int evaluations = 0;
    GC_INVARIANT(++evaluations == 1, "evaluated %d times", evaluations);
    EXPECT_EQ(evaluations, 1);
}

TEST(InvariantMacroDeathTest, FailingConditionAbortsWithDiagnostics) {
    EXPECT_DEATH(GC_INVARIANT(1 == 2, "math broke: %d", 42), "INVARIANT VIOLATION");
    EXPECT_DEATH(GC_INVARIANT(false, "context %s", "payload"), "context payload");
}

// --- Paxos invariants -------------------------------------------------------

TEST(PaxosInvariantDeathTest, AcceptorRejectsSecondValueInSameRound) {
    Acceptor acceptor;
    ASSERT_TRUE(acceptor.on_phase2a(1, 1, make_value(0, 1)));
    // Same instance and round, different value: P-ACC-1.
    EXPECT_DEATH(acceptor.on_phase2a(1, 1, make_value(0, 2)),
                 "re-accepting a different value");
    // Same value again is a benign retransmission.
    EXPECT_TRUE(acceptor.on_phase2a(1, 1, make_value(0, 1)));
    // A higher round may change the value.
    EXPECT_TRUE(acceptor.on_phase2a(1, 2, make_value(0, 3)));
}

TEST(PaxosInvariantTest, AcceptorMonitorAcceptsLegalTransitions) {
    Acceptor acceptor;
    check::AcceptorMonitor monitor;
    monitor.observe(acceptor);
    acceptor.on_phase1a(1, 1);
    acceptor.on_phase2a(1, 1, make_value(0, 1));
    monitor.observe(acceptor);
    acceptor.on_phase1a(3, 1);                      // higher promise
    acceptor.on_phase2a(1, 3, make_value(0, 2));    // re-accept at higher round
    acceptor.on_phase2a(2, 3, make_value(0, 3));
    monitor.observe(acceptor);
    acceptor.forget_below(2);                       // GC below the frontier
    monitor.observe(acceptor);
}

TEST(PaxosInvariantDeathTest, AcceptorMonitorCatchesPromiseFloorRegression) {
    Acceptor acceptor;
    check::AcceptorMonitor monitor;
    acceptor.on_phase1a(5, 1);
    monitor.observe(acceptor);
    acceptor.debug_set_promise_floor(2);  // deliberate corruption: P-ACC-2
    EXPECT_DEATH(monitor.observe(acceptor), "promise floor moved backwards");
}

TEST(PaxosInvariantDeathTest, AcceptorMonitorCatchesRewrittenVote) {
    Acceptor acceptor;
    check::AcceptorMonitor monitor;
    acceptor.on_phase2a(1, 3, make_value(0, 1));
    monitor.observe(acceptor);
    // Deliberate corruption, P-ACC-4: same (instance, vround), different value.
    acceptor.debug_overwrite_accepted(1, 3, make_value(0, 9));
    EXPECT_DEATH(monitor.observe(acceptor), "accepted value changed within round");
}

TEST(PaxosInvariantDeathTest, AcceptorMonitorCatchesVoteRoundRegression) {
    Acceptor acceptor;
    check::AcceptorMonitor monitor;
    acceptor.on_phase2a(1, 3, make_value(0, 1));
    monitor.observe(acceptor);
    // Deliberate corruption, P-ACC-3: the recorded vote round moves backwards.
    acceptor.debug_overwrite_accepted(1, 2, make_value(0, 1));
    EXPECT_DEATH(monitor.observe(acceptor), "accepted round moved backwards");
}

TEST(PaxosInvariantDeathTest, LearnerMonitorCatchesFrontierRegression) {
    CpuContext ctx{SimTime::zero()};
    Learner learner(2);
    check::AgreementMonitor monitor;
    const Value v = make_value(0, 1);
    learner.on_decision(DecisionMsg{0, 1, v.id, v.digest(), v}, ctx);
    monitor.observe({&learner});
    // A crash with storage loss rewinds the frontier; a rewind the monitor
    // was not told about (forget_learner) must trip P-LRN-2.
    learner.reset();
    EXPECT_DEATH(monitor.observe({&learner}), "delivery frontier moved backwards");
}

TEST(PaxosInvariantDeathTest, LearnerMonitorCatchesDeliveryCountMismatch) {
    CpuContext ctx{SimTime::zero()};
    Learner learner(2);
    check::AgreementMonitor monitor;
    const Value v = make_value(0, 1);
    learner.on_decision(DecisionMsg{0, 1, v.id, v.digest(), v}, ctx);
    // Deliberate corruption, P-LRN-3: the delivered-value counter decouples
    // from the frontier, so gapless in-order delivery no longer holds.
    learner.debug_set_delivered_count(5);
    EXPECT_DEATH(monitor.observe({&learner}), "inconsistent with");
}

TEST(PaxosInvariantDeathTest, LearnerRejectsConflictingDecisions) {
    Learner learner(2);
    CpuContext ctx{SimTime::zero()};
    const Value v1 = make_value(0, 1);
    const Value v2 = make_value(0, 2);
    learner.on_decision(DecisionMsg{0, 1, v1.id, v1.digest()}, ctx);
    EXPECT_TRUE(learner.knows_decision(1));
    // P-LRN-1: a Decision carrying a different value for the same instance.
    EXPECT_DEATH(learner.on_decision(DecisionMsg{1, 1, v2.id, v2.digest()}, ctx),
                 "conflicting decisions");
}

TEST(PaxosInvariantDeathTest, CorruptedAcceptorsTripAgreementCheck) {
    // Three acceptors decide v1 in instance 1; a quorum of their votes is
    // shown to learner A. The acceptors' slots are then deliberately
    // corrupted to v2, votes are re-derived from the corrupted state and
    // shown to learner B — which decides differently. The cross-learner
    // agreement monitor (P-AGR-1) must catch the divergence.
    const Value v1 = make_value(0, 1);
    const Value v2 = make_value(7, 9);
    std::vector<Acceptor> acceptors(3);
    for (Acceptor& a : acceptors) ASSERT_TRUE(a.on_phase2a(1, 1, v1));

    CpuContext ctx{SimTime::zero()};
    Learner learner_a(2);
    Learner learner_b(2);
    check::AgreementMonitor monitor;
    for (ProcessId id = 0; id < 2; ++id) {
        const auto e = acceptors[static_cast<std::size_t>(id)].accepted_in(1);
        ASSERT_TRUE(e.has_value());
        learner_a.on_phase2b(Phase2bMsg{id, 1, e->vround, e->value.id, e->value.digest()},
                             ctx);
    }
    EXPECT_TRUE(learner_a.knows_decision(1));
    monitor.observe({&learner_a, &learner_b});  // consistent so far

    for (Acceptor& a : acceptors) a.debug_overwrite_accepted(1, 1, v2);
    for (ProcessId id = 0; id < 2; ++id) {
        const auto e = acceptors[static_cast<std::size_t>(id)].accepted_in(1);
        ASSERT_TRUE(e.has_value());
        learner_b.on_phase2b(Phase2bMsg{id, 1, e->vround, e->value.id, e->value.digest()},
                             ctx);
    }
    EXPECT_TRUE(learner_b.knows_decision(1));
    EXPECT_DEATH(monitor.observe({&learner_a, &learner_b}), "agreement violated");
}

TEST(PaxosInvariantTest, AgreementMonitorAcceptsConsistentLearners) {
    CpuContext ctx{SimTime::zero()};
    Learner l1(2);
    Learner l2(2);
    check::AgreementMonitor monitor;
    const Value v = make_value(0, 1);
    l1.on_decision(DecisionMsg{0, 1, v.id, v.digest(), v}, ctx);
    monitor.observe({&l1, &l2});
    l2.on_decision(DecisionMsg{0, 1, v.id, v.digest(), v}, ctx);
    monitor.observe({&l1, &l2});
    EXPECT_EQ(l1.frontier(), 2);
    EXPECT_EQ(l2.frontier(), 2);
}

// --- Coordinator-succession invariants --------------------------------------

namespace crd {
PaxosConfig three_process_config() {
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 0;
    pc.timeouts_enabled = false;
    return pc;
}
}  // namespace crd

TEST(FailoverInvariantDeathTest, CoordinatorMonitorCatchesUnownedRound) {
    Simulator sim;
    FakeTransport t(sim, 0);
    PaxosProcess p(crd::three_process_config(), t);
    ASSERT_NE(p.coordinator(), nullptr);
    check::CoordinatorMonitor monitor;
    // Deliberate corruption, P-CRD-1: round 2 is owned by process 1, not 0.
    p.coordinator()->debug_force_round(2);
    EXPECT_DEATH(monitor.observe({&p}), "owned by");
}

TEST(FailoverInvariantDeathTest, CoordinatorMonitorCatchesSharedRound) {
    Simulator sim;
    FakeTransport t1(sim, 0);
    FakeTransport t2(sim, 0);
    // Two processes believing they are process 0 — the double-identity that
    // a botched failover could produce.
    PaxosProcess p1(crd::three_process_config(), t1);
    PaxosProcess p2(crd::three_process_config(), t2);
    check::CoordinatorMonitor monitor;
    p1.coordinator()->debug_force_round(1);
    p2.coordinator()->debug_force_round(1);
    // P-CRD-2: at most one active coordinator per round.
    EXPECT_DEATH(monitor.observe({&p1, &p2}), "actively coordinated by both");
}

TEST(FailoverInvariantDeathTest, CoordinatorMonitorCatchesRoundRegression) {
    Simulator sim;
    FakeTransport t(sim, 0);
    PaxosProcess p(crd::three_process_config(), t);
    check::CoordinatorMonitor monitor;
    p.coordinator()->debug_force_round(4);  // owned: (4-1) % 3 == 0
    monitor.observe({&p});
    // P-CRD-3: re-activation below a round this process already coordinated.
    p.coordinator()->debug_force_round(1);
    EXPECT_DEATH(monitor.observe({&p}), "coordination round moved backwards");
}

// --- Simulator invariants ---------------------------------------------------

TEST(SimulatorInvariantDeathTest, PastDatedEventTripsTimeMonotonicity) {
    Simulator sim;
    sim.schedule_at(SimTime::millis(1), [] {});
    sim.run_for(SimTime::millis(1));
    // Deliberate corruption, SIM-1: an event enqueued behind the clock,
    // bypassing the clamp every real schedule path applies.
    sim.debug_schedule_at_unclamped(SimTime::zero(), [] {});
    EXPECT_DEATH(sim.step(), "event scheduled in the past");
}

// --- Semantic-gossip invariants --------------------------------------------

TEST(SemanticInvariantDeathTest, DuplicateSenderAggregateIsRejected) {
    PaxosSemantics sem(0, 2, PaxosSemantics::Options{true, true});
    const Value v = make_value(0, 1);
    // A duplicated sender would double-count one acceptor's vote: G-AGG-2.
    auto dup = std::make_shared<Phase2bAggregateMsg>(
        1, 1, 1, v.id, v.digest(), std::vector<ProcessId>{2, 2}, 0);
    EXPECT_DEATH(sem.validate(wrap(dup), 3), "duplicate senders");
}

TEST(SemanticInvariantDeathTest, EmptyAggregateIsRejected) {
    PaxosSemantics sem(0, 2, PaxosSemantics::Options{true, true});
    const Value v = make_value(0, 1);
    auto empty = std::make_shared<Phase2bAggregateMsg>(
        1, 1, 1, v.id, v.digest(), std::vector<ProcessId>{}, 0);
    EXPECT_DEATH(sem.validate(wrap(empty), 3), "no senders");
}

TEST(SemanticInvariantDeathTest, RoundtripCheckCatchesLostVote) {
    const Value v = make_value(0, 1);
    const std::vector<GossipAppMessage> before{wrap(make_2b(1, 1, 1, v)),
                                               wrap(make_2b(2, 1, 1, v))};
    // A lossy aggregator that dropped sender 2's vote: S-AGG-1.
    auto lossy = std::make_shared<Phase2bAggregateMsg>(
        0, 1, 1, v.id, v.digest(), std::vector<ProcessId>{1}, 0);
    std::vector<GossipAppMessage> after{wrap(lossy)};
    after.front().aggregated = true;
    EXPECT_DEATH(check::check_aggregation_roundtrip(before, after),
                 "altered the Phase 2b vote set");
}

TEST(SemanticInvariantTest, AggregationPassesItsOwnRoundtripCheck) {
    PaxosSemantics sem(0, 2, PaxosSemantics::Options{true, true});
    const Value v = make_value(0, 1);
    std::vector<GossipAppMessage> pending{wrap(make_2b(1, 1, 1, v)),
                                          wrap(make_2b(2, 1, 1, v)),
                                          wrap(make_2b(3, 2, 1, v))};
    // aggregate() runs S-AGG-1 internally; surviving it is the assertion.
    const auto out = sem.aggregate(pending, 4);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(sem.stats().aggregates_built, 1u);
    check::check_aggregation_roundtrip(pending, out);
}

// --- Gossip-layer invariants ------------------------------------------------

TEST(GossipInvariantDeathTest, AggregatedMessageMustNotReachDelivery) {
    Simulator sim;
    Network net(sim, LatencyModel::aws(), 2, Network::Params{});
    net.allow_link(0, 1);
    PassThroughHooks hooks;
    GossipNode node(net.node(0), {1}, GossipNode::Params{}, hooks);
    const Value v = make_value(0, 1);
    GossipAppMessage msg = wrap(make_2b(1, 1, 1, v));
    msg.aggregated = true;  // an unreversed aggregate on the delivery path: G-AGG-1
    CpuContext ctx{SimTime::zero()};
    EXPECT_DEATH(node.broadcast(msg, ctx), "entered the broadcast path");
}

// --- Deployment wiring ------------------------------------------------------

TEST(InvariantCheckerTest, DeploymentRunsChecksDuringExperiment) {
    ExperimentConfig config;
    config.setup = Setup::SemanticGossip;
    config.n = 5;
    config.num_clients = 5;
    config.total_rate = 200.0;
    config.warmup = SimTime::seconds(0.1);
    config.measure = SimTime::seconds(0.5);
    config.drain = SimTime::seconds(0.2);
    config.invariant_probe_events = 1000;
    Deployment deployment(config);
    ASSERT_NE(deployment.invariants(), nullptr);
    // paxos-agreement, paxos-acceptors, coordinator-succession.
    EXPECT_EQ(deployment.invariants()->check_count(), 3u);
    const ExperimentResult result = deployment.run();
    EXPECT_GT(result.decisions_at_coordinator, 0u);
    // The probe fired during the run and collect() ran the final sweep.
    EXPECT_GT(deployment.invariants()->runs(), 1u);
}

#else  // !GC_ENABLE_INVARIANTS

TEST(InvariantMacroTest, CompiledOutEvaluatesNothing) {
    int evaluations = 0;
    GC_INVARIANT(++evaluations > 0, "never evaluated (%d)", evaluations);
    GC_INVARIANT(false, "a false invariant must not abort in release");
    EXPECT_EQ(evaluations, 0);
}

#endif  // GC_ENABLE_INVARIANTS

}  // namespace
}  // namespace gossipc
