// Unit tests: open-loop clients and workload accounting.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/client.hpp"
#include "workload/workload.hpp"

namespace gossipc {
namespace {

TEST(ClientTest, OpenLoopSubmitsAtRate) {
    // Drive a real (small) deployment; check submission counts only.
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 3;
    cfg.num_clients = 1;
    cfg.total_rate = 50.0;
    cfg.warmup = SimTime::seconds(0);
    cfg.measure = SimTime::seconds(2);
    cfg.drain = SimTime::seconds(1);
    Deployment d(cfg);
    const auto result = d.run();
    // 50/s for 2s: ~100 submissions (open loop: independent of decisions).
    EXPECT_NEAR(static_cast<double>(result.workload.submitted), 100.0, 3.0);
    EXPECT_EQ(result.workload.not_ordered, 0u);
}

TEST(ClientTest, RejectsNonPositiveRate) {
    Simulator sim;
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 3;
    Deployment d(cfg);
    Client::Params cp;
    cp.rate = 0.0;
    EXPECT_THROW(Client(d.simulator(), d.process(0), SimTime::micros(250), cp),
                 std::invalid_argument);
}

TEST(WorkloadTest, LatencyIncludesClientLinks) {
    // Minimum possible latency is 2x the client link plus one WAN round.
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 13;
    cfg.total_rate = 13.0;
    cfg.warmup = SimTime::seconds(0.5);
    cfg.measure = SimTime::seconds(2);
    cfg.drain = SimTime::seconds(2);
    const auto result = run_experiment(cfg);
    ASSERT_GT(result.workload.latencies.count(), 0u);
    // Fastest client sits with the coordinator: ~ RTT to Canada (14ms) floor.
    EXPECT_GT(result.workload.latencies.min(), 10.0);
}

TEST(WorkloadTest, ThroughputMatchesOfferedBelowSaturation) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 13;
    cfg.total_rate = 100.0;
    cfg.warmup = SimTime::seconds(1);
    cfg.measure = SimTime::seconds(3);
    cfg.drain = SimTime::seconds(2);
    const auto result = run_experiment(cfg);
    EXPECT_NEAR(result.workload.throughput, 100.0, 10.0);
    EXPECT_EQ(result.workload.not_ordered, 0u);
}

TEST(WorkloadTest, PerClientHistogramsPopulated) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 13;
    cfg.total_rate = 52.0;
    cfg.warmup = SimTime::seconds(0.5);
    cfg.measure = SimTime::seconds(2);
    cfg.drain = SimTime::seconds(2);
    Deployment d(cfg);
    d.run();
    for (const auto& c : d.workload().clients()) {
        EXPECT_GT(c->counts().submitted, 0u) << "client " << c->id();
        EXPECT_GT(c->latencies().count(), 0u) << "client " << c->id();
    }
    // 13 clients, one per region, attached to processes in their region.
    EXPECT_EQ(d.workload().clients().size(), 13u);
}

TEST(WorkloadTest, ClientsAttachToOwnRegion) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 27;  // coordinator + 2 per region
    Deployment d(cfg);
    for (const auto& c : d.workload().clients()) {
        const Region client_region = static_cast<Region>(c->id() % kNumRegions);
        EXPECT_EQ(region_of_process(c->attached_process(), cfg.n), client_region);
    }
}

TEST(WorkloadTest, RejectsBadParams) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 3;
    cfg.num_clients = 0;
    EXPECT_THROW(Deployment{cfg}, std::invalid_argument);
    cfg.num_clients = kNumRegions + 1;
    EXPECT_THROW(Deployment{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace gossipc
