// Unit tests: DirectTransport routing (Baseline star) and GossipTransport's
// broadcast-only mapping.
#include <gtest/gtest.h>

#include <memory>

#include "gossip/gossip_node.hpp"
#include "net/network.hpp"
#include "overlay/random_overlay.hpp"
#include "test_util.hpp"
#include "transport/direct_transport.hpp"
#include "transport/gossip_transport.hpp"

namespace gossipc {
namespace {

using testutil::make_value;

TEST(DirectTransportTest, SendRoutesPointToPoint) {
    Simulator sim;
    Network net(sim, LatencyModel::aws(), 3, {});
    net.allow_all_links();
    DirectTransport t0(net, 0), t1(net, 1), t2(net, 2);
    std::vector<ProcessId> got_at;
    for (auto* t : {&t0, &t1, &t2}) {
        t->set_deliver([&got_at, t](const PaxosMessagePtr&, CpuContext&) {
            got_at.push_back(t->self());
        });
    }
    net.node(0).post([&](CpuContext& ctx) {
        t0.send(2, std::make_shared<Phase1aMsg>(0, 1, 1), ctx);
    });
    sim.run_until_idle();
    EXPECT_EQ(got_at, (std::vector<ProcessId>{2}));
}

TEST(DirectTransportTest, BroadcastDeliversLocallyAndRemotely) {
    Simulator sim;
    Network net(sim, LatencyModel::aws(), 3, {});
    net.allow_all_links();
    DirectTransport t0(net, 0), t1(net, 1), t2(net, 2);
    std::multiset<ProcessId> got_at;
    for (auto* t : {&t0, &t1, &t2}) {
        t->set_deliver([&got_at, t](const PaxosMessagePtr&, CpuContext&) {
            got_at.insert(t->self());
        });
    }
    net.node(0).post([&](CpuContext& ctx) {
        t0.broadcast(std::make_shared<Phase1aMsg>(0, 1, 1), ctx);
    });
    sim.run_until_idle();
    EXPECT_EQ(got_at, (std::multiset<ProcessId>{0, 1, 2}));
}

TEST(DirectTransportTest, SelfSendIsLocal) {
    Simulator sim;
    Network net(sim, LatencyModel::aws(), 3, {});  // no links at all
    DirectTransport t0(net, 0);
    int got = 0;
    t0.set_deliver([&](const PaxosMessagePtr&, CpuContext&) { ++got; });
    net.node(0).post([&](CpuContext& ctx) {
        t0.send(0, std::make_shared<Phase1aMsg>(0, 1, 1), ctx);
    });
    sim.run_until_idle();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(net.node(0).counters().sent, 0u);
}

TEST(DirectTransportTest, MissingLinkIsLogicError) {
    Simulator sim;
    Network net(sim, LatencyModel::aws(), 3, {});
    DirectTransport t0(net, 0);
    bool threw = false;
    net.node(0).post([&](CpuContext& ctx) {
        try {
            t0.send(1, std::make_shared<Phase1aMsg>(0, 1, 1), ctx);
        } catch (const std::logic_error&) {
            threw = true;
        }
    });
    sim.run_until_idle();
    EXPECT_TRUE(threw);
}

TEST(DirectTransportTest, ScheduleRunsOnNodeCpu) {
    Simulator sim;
    Network net(sim, LatencyModel::aws(), 3, {});
    DirectTransport t0(net, 0);
    SimTime fired_at = SimTime::zero();
    t0.schedule(SimTime::millis(5), [&](CpuContext& ctx) { fired_at = ctx.now(); });
    sim.run_until_idle();
    EXPECT_GE(fired_at, SimTime::millis(5));
}

struct GossipTransportFixture {
    Simulator sim;
    Network net;
    std::vector<std::unique_ptr<PassThroughHooks>> hooks;
    std::vector<std::unique_ptr<GossipNode>> gnodes;
    std::vector<std::unique_ptr<GossipTransport>> transports;
    std::vector<std::vector<PaxosMsgType>> delivered;

    explicit GossipTransportFixture(int n, std::uint64_t seed = 3)
        : net(sim, LatencyModel::aws(), n, {}), delivered(static_cast<std::size_t>(n)) {
        const Graph overlay = make_connected_overlay(n, seed);
        for (const auto& [a, b] : overlay.edges()) net.allow_link(a, b);
        for (ProcessId id = 0; id < n; ++id) {
            hooks.push_back(std::make_unique<PassThroughHooks>());
            gnodes.push_back(std::make_unique<GossipNode>(net.node(id), overlay.neighbors(id),
                                                          GossipNode::Params{}, *hooks.back()));
            transports.push_back(std::make_unique<GossipTransport>(*gnodes.back()));
            transports.back()->set_deliver(
                [this, id](const PaxosMessagePtr& m, CpuContext&) {
                    delivered[static_cast<std::size_t>(id)].push_back(m->type());
                });
        }
    }
};

TEST(GossipTransportTest, BroadcastReachesAll) {
    GossipTransportFixture f(10);
    f.net.node(0).post([&](CpuContext& ctx) {
        f.transports[0]->broadcast(std::make_shared<Phase1aMsg>(0, 1, 1), ctx);
    });
    f.sim.run_until_idle();
    for (int v = 0; v < 10; ++v) {
        EXPECT_EQ(f.delivered[static_cast<std::size_t>(v)].size(), 1u) << v;
    }
}

TEST(GossipTransportTest, SendIsBroadcast) {
    // "Phase 1b messages ... will be delivered to all participants".
    GossipTransportFixture f(10);
    f.net.node(3).post([&](CpuContext& ctx) {
        f.transports[3]->send(
            0, std::make_shared<Phase1bMsg>(3, 1, 1, std::vector<AcceptedEntry>{}), ctx);
    });
    f.sim.run_until_idle();
    for (int v = 0; v < 10; ++v) {
        ASSERT_EQ(f.delivered[static_cast<std::size_t>(v)].size(), 1u) << v;
        EXPECT_EQ(f.delivered[static_cast<std::size_t>(v)][0], PaxosMsgType::Phase1b);
    }
}

TEST(GossipTransportTest, DuplicateBroadcastSuppressedByMessageKey) {
    GossipTransportFixture f(6);
    const auto msg = std::make_shared<Phase1aMsg>(0, 1, 1);
    f.net.node(0).post([&](CpuContext& ctx) {
        f.transports[0]->broadcast(msg, ctx);
        f.transports[0]->broadcast(msg, ctx);  // same unique key
    });
    f.sim.run_until_idle();
    for (int v = 0; v < 6; ++v) {
        EXPECT_EQ(f.delivered[static_cast<std::size_t>(v)].size(), 1u);
    }
}

}  // namespace
}  // namespace gossipc
