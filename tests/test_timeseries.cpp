// Unit & integration tests for the time-series sampler.
#include <gtest/gtest.h>

#include "core/semantic_gossip.hpp"
#include "stats/timeseries.hpp"

namespace gossipc {
namespace {

TEST(TimeSeriesTest, SamplesAtInterval) {
    Simulator sim;
    double counter = 0.0;
    sim.schedule_after(SimTime::millis(150), [&] { counter = 5.0; });
    TimeSeries ts(sim, SimTime::millis(100), SimTime::seconds(1), [&] { return counter; });
    sim.run_until(SimTime::seconds(2));
    ASSERT_EQ(ts.points().size(), 10u);
    EXPECT_EQ(ts.points()[0].at, SimTime::millis(100));
    EXPECT_DOUBLE_EQ(ts.points()[0].value, 0.0);
    EXPECT_DOUBLE_EQ(ts.points()[1].value, 5.0);  // after the change
    EXPECT_DOUBLE_EQ(ts.last_value(), 5.0);
    EXPECT_DOUBLE_EQ(ts.max_value(), 5.0);
}

TEST(TimeSeriesTest, RatesAreDeltas) {
    Simulator sim;
    double cumulative = 0.0;
    // +10 every 100ms.
    std::function<void(SimTime)> tick = [&](SimTime at) {
        sim.schedule_at(at, [&, at] {
            cumulative += 10.0;
            tick(at + SimTime::millis(100));
        });
    };
    tick(SimTime::millis(50));
    TimeSeries ts(sim, SimTime::millis(100), SimTime::seconds(1), [&] { return cumulative; });
    sim.run_until(SimTime::seconds(1.2));
    const auto rates = ts.rates();
    ASSERT_GE(rates.size(), 5u);
    // 10 per 100ms = 100/s.
    for (std::size_t i = 1; i < rates.size(); ++i) {
        EXPECT_NEAR(rates[i].value, 100.0, 1e-9);
    }
}

TEST(TimeSeriesTest, RatesRejectGaugeProbe) {
    // A sawtooth gauge (value goes down) has no meaningful cumulative rate;
    // rates() must flag the misuse instead of returning garbage.
    Simulator sim;
    double gauge = 0.0;
    sim.schedule_after(SimTime::millis(150), [&] { gauge = 7.0; });
    sim.schedule_after(SimTime::millis(250), [&] { gauge = 2.0; });
    TimeSeries ts(sim, SimTime::millis(100), SimTime::seconds(1), [&] { return gauge; });
    sim.run_until(SimTime::seconds(1.5));
    EXPECT_THROW(ts.rates(), std::logic_error);
}

TEST(TimeSeriesTest, FinalPointAtUntilIsIncluded) {
    // `until_` is inclusive: interval 250ms, until 1s -> samples at 250, 500,
    // 750, and exactly 1000 ms.
    Simulator sim;
    TimeSeries ts(sim, SimTime::millis(250), SimTime::seconds(1), [] { return 1.0; });
    sim.run_until(SimTime::seconds(2));
    ASSERT_EQ(ts.points().size(), 4u);
    EXPECT_EQ(ts.points().back().at, SimTime::seconds(1));
}

TEST(TimeSeriesTest, RejectsBadInterval) {
    Simulator sim;
    EXPECT_THROW(TimeSeries(sim, SimTime::zero(), SimTime::seconds(1), [] { return 0.0; }),
                 std::invalid_argument);
}

TEST(TimeSeriesTest, ObservesBacklogInDeployment) {
    // At an overloaded rate the coordinator's CPU backlog grows over the
    // run; the sampler must see it.
    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = 13;
    cfg.total_rate = 3900.0;  // far beyond the n=13 gossip knee
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1.5);
    cfg.drain = SimTime::seconds(0.5);
    Deployment d(cfg);
    TimeSeries backlog(d.simulator(), SimTime::millis(200), SimTime::seconds(2),
                       [&] { return d.network().node(0).backlog().as_millis(); });
    TimeSeries delivered(d.simulator(), SimTime::millis(200), SimTime::seconds(2), [&] {
        return static_cast<double>(d.process(0).learner().delivered_count());
    });
    d.run();
    EXPECT_GT(backlog.max_value(), 1.0);  // saturation visible as backlog
    // Delivered counter is cumulative and non-decreasing.
    double prev = -1.0;
    for (const auto& p : delivered.points()) {
        EXPECT_GE(p.value, prev);
        prev = p.value;
    }
    EXPECT_GT(delivered.last_value(), 0.0);
}

}  // namespace
}  // namespace gossipc
