// Real-clock reactor tests (DESIGN.md §10): timers, posted tasks, fd
// readiness, and the loop-control surface gossipd relies on.
//
// These run against the real monotonic clock, so delays are kept tiny
// (single-digit milliseconds) and assertions are one-sided — a loaded CI
// machine may fire a timer late, never early.
#include <gtest/gtest.h>

#include <unistd.h>

#include <fcntl.h>

#include <string>
#include <vector>

#include "runtime/reactor.hpp"

namespace gossipc::runtime {
namespace {

SimTime ms(std::int64_t v) { return SimTime::millis(v); }

void make_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ASSERT_GE(flags, 0);
    ASSERT_EQ(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
}

struct Pipe {
    int fds[2] = {-1, -1};
    Pipe() {
        EXPECT_EQ(::pipe(fds), 0);
        make_nonblocking(fds[0]);
        make_nonblocking(fds[1]);
    }
    ~Pipe() {
        if (fds[0] >= 0) ::close(fds[0]);
        if (fds[1] >= 0) ::close(fds[1]);
    }
    int reader() const { return fds[0]; }
    int writer() const { return fds[1]; }
};

TEST(Reactor, NowIsMonotonic) {
    Reactor r;
    const SimTime a = r.now();
    const SimTime b = r.now();
    EXPECT_GE(b, a);
    EXPECT_GE(a, SimTime::zero());
}

TEST(Reactor, OneShotTimerFiresOnce) {
    Reactor r;
    int fired = 0;
    r.schedule_after(ms(1), [&] { ++fired; });
    EXPECT_TRUE(r.run_until([&] { return fired > 0; }, ms(500)));
    EXPECT_EQ(fired, 1);
    // Running longer must not re-fire a one-shot.
    r.run_until([] { return false; }, ms(5));
    EXPECT_EQ(fired, 1);
}

TEST(Reactor, TimersFireInDeadlineOrder) {
    Reactor r;
    std::vector<int> order;
    r.schedule_after(ms(3), [&] { order.push_back(3); });
    r.schedule_after(ms(1), [&] { order.push_back(1); });
    r.schedule_after(ms(2), [&] { order.push_back(2); });
    EXPECT_TRUE(r.run_until([&] { return order.size() == 3; }, ms(500)));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, PeriodicTimerRepeats) {
    Reactor r;
    int fired = 0;
    Reactor::TimerId id = r.schedule_every(ms(1), [&] { ++fired; });
    EXPECT_TRUE(r.run_until([&] { return fired >= 5; }, ms(2000)));
    r.cancel_timer(id);
    const int at_cancel = fired;
    r.run_until([] { return false; }, ms(5));
    // At most one already-due firing may slip in after cancel is requested;
    // with cancel_timer called outside the loop, none should.
    EXPECT_EQ(fired, at_cancel);
}

TEST(Reactor, CancelBeforeFire) {
    Reactor r;
    bool fired = false;
    const Reactor::TimerId id = r.schedule_after(ms(2), [&] { fired = true; });
    r.cancel_timer(id);
    r.run_until([] { return false; }, ms(10));
    EXPECT_FALSE(fired);
}

TEST(Reactor, CancelFromWithinCallback) {
    Reactor r;
    int a_fired = 0;
    int b_fired = 0;
    Reactor::TimerId b = r.schedule_every(ms(2), [&] { ++b_fired; });
    r.schedule_after(ms(1), [&] {
        ++a_fired;
        r.cancel_timer(b);
    });
    r.run_until([] { return false; }, ms(20));
    EXPECT_EQ(a_fired, 1);
    EXPECT_EQ(b_fired, 0);
}

TEST(Reactor, PostedTasksRunFifo) {
    Reactor r;
    std::vector<int> order;
    r.post([&] { order.push_back(1); });
    r.post([&] { order.push_back(2); });
    r.post([&] {
        order.push_back(3);
        // Posting from a posted task defers to the next iteration, not the
        // current drain — matching Node::post re-entrancy.
        r.post([&] { order.push_back(4); });
    });
    EXPECT_TRUE(r.run_until([&] { return order.size() == 4; }, ms(500)));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Reactor, StopEndsRun) {
    Reactor r;
    r.schedule_after(ms(1), [&] { r.stop(); });
    r.run();
    EXPECT_TRUE(r.stopped());
}

TEST(Reactor, InterruptCheckEndsRun) {
    Reactor r;
    bool flag = false;  // stands in for the daemon's sig_atomic_t
    r.set_interrupt_check([&] { return flag; });
    r.schedule_after(ms(1), [&] { flag = true; });
    r.run();  // must return once the check trips, without an explicit stop()
    SUCCEED();
}

TEST(Reactor, RunUntilTimesOut) {
    Reactor r;
    const SimTime before = r.now();
    EXPECT_FALSE(r.run_until([] { return false; }, ms(5)));
    EXPECT_GE(r.now() - before, ms(5));
}

TEST(Reactor, PipeReadable) {
    Reactor r;
    Pipe p;
    std::string received;
    r.add_fd(p.reader(), [&](bool readable, bool, bool) {
        if (!readable) return;
        char buf[64];
        const ssize_t n = ::read(p.reader(), buf, sizeof buf);
        if (n > 0) received.append(buf, static_cast<std::size_t>(n));
    });
    r.schedule_after(ms(1), [&] { ASSERT_EQ(::write(p.writer(), "hi", 2), 2); });
    EXPECT_TRUE(r.run_until([&] { return received.size() >= 2; }, ms(500)));
    EXPECT_EQ(received, "hi");
    r.remove_fd(p.reader());
}

TEST(Reactor, WriteInterestToggles) {
    Reactor r;
    Pipe p;
    int write_events = 0;
    r.add_fd(p.writer(), [&](bool, bool writable, bool) {
        if (!writable) return;
        ++write_events;
        // One event is enough; turn interest off like a drained send queue.
        r.set_write_interest(p.writer(), false);
    });
    // Default interest is read-only: no write events until enabled.
    r.run_until([] { return false; }, ms(5));
    EXPECT_EQ(write_events, 0);

    r.set_write_interest(p.writer(), true);
    EXPECT_TRUE(r.run_until([&] { return write_events > 0; }, ms(500)));
    EXPECT_EQ(write_events, 1);

    // Interest was turned off inside the callback; no further events.
    r.run_until([] { return false; }, ms(5));
    EXPECT_EQ(write_events, 1);
    r.remove_fd(p.writer());
}

TEST(Reactor, PeerHangupReportsReadableEof) {
    Reactor r;
    Pipe p;
    bool saw_eof = false;
    r.add_fd(p.reader(), [&](bool readable, bool, bool error) {
        if (!readable && !error) return;
        char buf[16];
        if (::read(p.reader(), buf, sizeof buf) == 0) saw_eof = true;
    });
    r.schedule_after(ms(1), [&] {
        ::close(p.fds[1]);
        p.fds[1] = -1;
    });
    EXPECT_TRUE(r.run_until([&] { return saw_eof; }, ms(500)));
    r.remove_fd(p.reader());
}

TEST(Reactor, RemoveFdFromWithinCallback) {
    Reactor r;
    Pipe p;
    int events = 0;
    r.add_fd(p.reader(), [&](bool readable, bool, bool) {
        if (!readable) return;
        ++events;
        char buf[16];
        (void)!::read(p.reader(), buf, sizeof buf);
        r.remove_fd(p.reader());  // connection-drop pattern: remove self
    });
    ASSERT_EQ(::write(p.writer(), "x", 1), 1);
    EXPECT_TRUE(r.run_until([&] { return events > 0; }, ms(500)));
    ASSERT_EQ(::write(p.writer(), "y", 1), 1);
    r.run_until([] { return false; }, ms(5));
    EXPECT_EQ(events, 1);
}

TEST(Reactor, TimerAndIoInterleave) {
    // A periodic timer keeps firing while fd traffic flows — neither side
    // may starve the other.
    Reactor r;
    Pipe p;
    int ticks = 0;
    int reads = 0;
    r.schedule_every(ms(1), [&] {
        ++ticks;
        (void)!::write(p.writer(), "t", 1);
    });
    r.add_fd(p.reader(), [&](bool readable, bool, bool) {
        if (!readable) return;
        char buf[64];
        if (::read(p.reader(), buf, sizeof buf) > 0) ++reads;
    });
    EXPECT_TRUE(r.run_until([&] { return ticks >= 5 && reads >= 3; }, ms(2000)));
    r.remove_fd(p.reader());
}

}  // namespace
}  // namespace gossipc::runtime
