// Real-clock reactor tests (DESIGN.md §10): timers, posted tasks, fd
// readiness, and the loop-control surface gossipd relies on.
//
// These run against the real monotonic clock, so delays are kept tiny
// (single-digit milliseconds) and assertions are one-sided — a loaded CI
// machine may fire a timer late, never early.
#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <fcntl.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "runtime/reactor.hpp"

namespace gossipc::runtime {
namespace {

SimTime ms(std::int64_t v) { return SimTime::millis(v); }

void make_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ASSERT_GE(flags, 0);
    ASSERT_EQ(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
}

struct Pipe {
    int fds[2] = {-1, -1};
    Pipe() {
        EXPECT_EQ(::pipe(fds), 0);
        make_nonblocking(fds[0]);
        make_nonblocking(fds[1]);
    }
    ~Pipe() {
        if (fds[0] >= 0) ::close(fds[0]);
        if (fds[1] >= 0) ::close(fds[1]);
    }
    int reader() const { return fds[0]; }
    int writer() const { return fds[1]; }
};

TEST(Reactor, NowIsMonotonic) {
    Reactor r;
    const SimTime a = r.now();
    const SimTime b = r.now();
    EXPECT_GE(b, a);
    EXPECT_GE(a, SimTime::zero());
}

TEST(Reactor, OneShotTimerFiresOnce) {
    Reactor r;
    int fired = 0;
    r.schedule_after(ms(1), [&] { ++fired; });
    EXPECT_TRUE(r.run_until([&] { return fired > 0; }, ms(500)));
    EXPECT_EQ(fired, 1);
    // Running longer must not re-fire a one-shot.
    r.run_until([] { return false; }, ms(5));
    EXPECT_EQ(fired, 1);
}

TEST(Reactor, TimersFireInDeadlineOrder) {
    Reactor r;
    std::vector<int> order;
    r.schedule_after(ms(3), [&] { order.push_back(3); });
    r.schedule_after(ms(1), [&] { order.push_back(1); });
    r.schedule_after(ms(2), [&] { order.push_back(2); });
    EXPECT_TRUE(r.run_until([&] { return order.size() == 3; }, ms(500)));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, PeriodicTimerRepeats) {
    Reactor r;
    int fired = 0;
    Reactor::TimerId id = r.schedule_every(ms(1), [&] { ++fired; });
    EXPECT_TRUE(r.run_until([&] { return fired >= 5; }, ms(2000)));
    r.cancel_timer(id);
    const int at_cancel = fired;
    r.run_until([] { return false; }, ms(5));
    // At most one already-due firing may slip in after cancel is requested;
    // with cancel_timer called outside the loop, none should.
    EXPECT_EQ(fired, at_cancel);
}

TEST(Reactor, CancelBeforeFire) {
    Reactor r;
    bool fired = false;
    const Reactor::TimerId id = r.schedule_after(ms(2), [&] { fired = true; });
    r.cancel_timer(id);
    r.run_until([] { return false; }, ms(10));
    EXPECT_FALSE(fired);
}

TEST(Reactor, CancelFromWithinCallback) {
    Reactor r;
    int a_fired = 0;
    int b_fired = 0;
    Reactor::TimerId b = r.schedule_every(ms(2), [&] { ++b_fired; });
    r.schedule_after(ms(1), [&] {
        ++a_fired;
        r.cancel_timer(b);
    });
    r.run_until([] { return false; }, ms(20));
    EXPECT_EQ(a_fired, 1);
    EXPECT_EQ(b_fired, 0);
}

TEST(Reactor, PostedTasksRunFifo) {
    Reactor r;
    std::vector<int> order;
    r.post([&] { order.push_back(1); });
    r.post([&] { order.push_back(2); });
    r.post([&] {
        order.push_back(3);
        // Posting from a posted task defers to the next iteration, not the
        // current drain — matching Node::post re-entrancy.
        r.post([&] { order.push_back(4); });
    });
    EXPECT_TRUE(r.run_until([&] { return order.size() == 4; }, ms(500)));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Reactor, StopEndsRun) {
    Reactor r;
    r.schedule_after(ms(1), [&] { r.stop(); });
    r.run();
    EXPECT_TRUE(r.stopped());
}

TEST(Reactor, InterruptCheckEndsRun) {
    Reactor r;
    bool flag = false;  // stands in for the daemon's sig_atomic_t
    r.set_interrupt_check([&] { return flag; });
    r.schedule_after(ms(1), [&] { flag = true; });
    r.run();  // must return once the check trips, without an explicit stop()
    SUCCEED();
}

TEST(Reactor, RunUntilTimesOut) {
    Reactor r;
    const SimTime before = r.now();
    EXPECT_FALSE(r.run_until([] { return false; }, ms(5)));
    EXPECT_GE(r.now() - before, ms(5));
}

TEST(Reactor, PipeReadable) {
    Reactor r;
    Pipe p;
    std::string received;
    r.add_fd(p.reader(), [&](bool readable, bool, bool) {
        if (!readable) return;
        char buf[64];
        const ssize_t n = ::read(p.reader(), buf, sizeof buf);
        if (n > 0) received.append(buf, static_cast<std::size_t>(n));
    });
    r.schedule_after(ms(1), [&] { ASSERT_EQ(::write(p.writer(), "hi", 2), 2); });
    EXPECT_TRUE(r.run_until([&] { return received.size() >= 2; }, ms(500)));
    EXPECT_EQ(received, "hi");
    r.remove_fd(p.reader());
}

TEST(Reactor, WriteInterestToggles) {
    Reactor r;
    Pipe p;
    int write_events = 0;
    r.add_fd(p.writer(), [&](bool, bool writable, bool) {
        if (!writable) return;
        ++write_events;
        // One event is enough; turn interest off like a drained send queue.
        r.set_write_interest(p.writer(), false);
    });
    // Default interest is read-only: no write events until enabled.
    r.run_until([] { return false; }, ms(5));
    EXPECT_EQ(write_events, 0);

    r.set_write_interest(p.writer(), true);
    EXPECT_TRUE(r.run_until([&] { return write_events > 0; }, ms(500)));
    EXPECT_EQ(write_events, 1);

    // Interest was turned off inside the callback; no further events.
    r.run_until([] { return false; }, ms(5));
    EXPECT_EQ(write_events, 1);
    r.remove_fd(p.writer());
}

TEST(Reactor, PeerHangupReportsReadableEof) {
    Reactor r;
    Pipe p;
    bool saw_eof = false;
    r.add_fd(p.reader(), [&](bool readable, bool, bool error) {
        if (!readable && !error) return;
        char buf[16];
        if (::read(p.reader(), buf, sizeof buf) == 0) saw_eof = true;
    });
    r.schedule_after(ms(1), [&] {
        ::close(p.fds[1]);
        p.fds[1] = -1;
    });
    EXPECT_TRUE(r.run_until([&] { return saw_eof; }, ms(500)));
    r.remove_fd(p.reader());
}

TEST(Reactor, RemoveFdFromWithinCallback) {
    Reactor r;
    Pipe p;
    int events = 0;
    r.add_fd(p.reader(), [&](bool readable, bool, bool) {
        if (!readable) return;
        ++events;
        char buf[16];
        (void)!::read(p.reader(), buf, sizeof buf);
        r.remove_fd(p.reader());  // connection-drop pattern: remove self
    });
    ASSERT_EQ(::write(p.writer(), "x", 1), 1);
    EXPECT_TRUE(r.run_until([&] { return events > 0; }, ms(500)));
    ASSERT_EQ(::write(p.writer(), "y", 1), 1);
    r.run_until([] { return false; }, ms(5));
    EXPECT_EQ(events, 1);
}

// -- EINTR / poll-failure handling (DESIGN.md §12) ---------------------------

namespace {
/// Installs a no-op SIGUSR1 handler (no SA_RESTART, so poll(2) really
/// returns EINTR) and restores the previous disposition on destruction.
struct ScopedUsr1Handler {
    struct sigaction previous = {};
    ScopedUsr1Handler() {
        struct sigaction sa = {};
        sa.sa_handler = [](int) {};
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0;
        EXPECT_EQ(::sigaction(SIGUSR1, &sa, &previous), 0);
    }
    ~ScopedUsr1Handler() { ::sigaction(SIGUSR1, &previous, nullptr); }
};
}  // namespace

TEST(Reactor, InterruptedPollNeitherFiresTimersEarlyNorLosesThem) {
    ScopedUsr1Handler guard;
    Reactor r;

    const SimTime deadline = ms(40);
    int fired = 0;
    SimTime fired_at = SimTime::zero();
    r.schedule_after(deadline, [&] {
        ++fired;
        fired_at = r.now();
    });

    // Hammer the reactor thread with signals while it sits in poll waiting
    // for the timer. Every interrupted poll must return to the loop top,
    // re-check deadlines, and keep waiting — not fire early, not busy-spin,
    // not drop the timer.
    std::atomic<bool> stop_signals{false};
    const pthread_t reactor_thread = ::pthread_self();
    std::thread pinger([&] {
        while (!stop_signals.load()) {
            ::pthread_kill(reactor_thread, SIGUSR1);
            ::usleep(2000);  // ~20 interrupts across the 40 ms window
        }
    });

    const bool done = r.run_until([&] { return fired > 0; }, ms(2000));
    stop_signals.store(true);
    pinger.join();

    ASSERT_TRUE(done) << "timer lost under signal storm";
    EXPECT_EQ(fired, 1);
    EXPECT_GE(fired_at, deadline) << "timer fired before its deadline";
    EXPECT_GE(r.stats().interrupted, 1u) << "no poll was actually interrupted";
    EXPECT_EQ(r.stats().poll_errors, 0u);
}

TEST(Reactor, InterruptedPollDoesNotBusySpin) {
    ScopedUsr1Handler guard;
    Reactor r;

    std::atomic<bool> stop_signals{false};
    const pthread_t reactor_thread = ::pthread_self();
    std::thread pinger([&] {
        while (!stop_signals.load()) {
            ::pthread_kill(reactor_thread, SIGUSR1);
            ::usleep(5000);
        }
    });

    // Idle reactor under a ~200 Hz interrupt stream for 50 ms: each EINTR
    // costs exactly one extra loop iteration, so polls stay within the same
    // order of magnitude as the interrupts. A busy-spinning EINTR path
    // (retrying poll with a zero timeout, say) would rack up tens of
    // thousands of polls here.
    r.run_until([] { return false; }, ms(50));
    stop_signals.store(true);
    pinger.join();

    const auto& s = r.stats();
    EXPECT_GE(s.interrupted, 1u);
    EXPECT_LE(s.polls, 500u) << "interrupted=" << s.interrupted
                             << " — EINTR path appears to busy-spin";
}

TEST(Reactor, IdleLoopIsNotHot) {
    Reactor r;
    // 50 ms idle with no fds and no near timers: the poll timeout is capped
    // at 50 ms, so only a handful of polls may happen.
    r.run_until([] { return false; }, ms(50));
    EXPECT_LE(r.stats().polls, 100u);
    EXPECT_EQ(r.stats().poll_errors, 0u);
}

TEST(Reactor, TimerAndIoInterleave) {
    // A periodic timer keeps firing while fd traffic flows — neither side
    // may starve the other.
    Reactor r;
    Pipe p;
    int ticks = 0;
    int reads = 0;
    r.schedule_every(ms(1), [&] {
        ++ticks;
        (void)!::write(p.writer(), "t", 1);
    });
    r.add_fd(p.reader(), [&](bool readable, bool, bool) {
        if (!readable) return;
        char buf[64];
        if (::read(p.reader(), buf, sizeof buf) > 0) ++reads;
    });
    EXPECT_TRUE(r.run_until([&] { return ticks >= 5 && reads >= 3; }, ms(2000)));
    r.remove_fd(p.reader());
}

}  // namespace
}  // namespace gossipc::runtime
