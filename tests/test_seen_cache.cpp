// Unit tests: recently-seen cache and sliding Bloom filter.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gossip/seen_cache.hpp"
#include "gossip/sliding_bloom.hpp"

namespace gossipc {
namespace {

TEST(SeenCacheTest, DetectsDuplicates) {
    SeenCache cache(1024);
    EXPECT_TRUE(cache.insert_if_new(42));
    EXPECT_FALSE(cache.insert_if_new(42));
    EXPECT_TRUE(cache.contains(42));
    EXPECT_FALSE(cache.contains(43));
}

TEST(SeenCacheTest, ZeroIdHandled) {
    SeenCache cache(64);
    EXPECT_TRUE(cache.insert_if_new(0));
    EXPECT_FALSE(cache.insert_if_new(0));
}

TEST(SeenCacheTest, RejectsZeroCapacity) {
    EXPECT_THROW(SeenCache(0), std::invalid_argument);
}

TEST(SeenCacheTest, NoFalseDuplicatesAtLowOccupancy) {
    // Distinct random ids inserted well below capacity must all be "new".
    SeenCache cache(1 << 16);
    Rng rng(1);
    for (int i = 0; i < 4000; ++i) {
        EXPECT_TRUE(cache.insert_if_new(rng.next_u64())) << i;
    }
}

TEST(SeenCacheTest, RecentIdsSurviveModerateChurn) {
    // After inserting far fewer ids than capacity, early ids are still seen.
    SeenCache cache(1 << 14);
    for (std::uint64_t id = 1; id <= 1000; ++id) cache.insert_if_new(id);
    int still_seen = 0;
    for (std::uint64_t id = 1; id <= 1000; ++id) still_seen += cache.contains(id) ? 1 : 0;
    EXPECT_GT(still_seen, 990);  // set-collision evictions are rare
}

TEST(SeenCacheTest, EvictsUnderOverflow) {
    SeenCache cache(256);
    for (std::uint64_t id = 1; id <= 100000; ++id) cache.insert_if_new(id);
    EXPECT_GT(cache.evictions(), 0u);
    // Very old ids were (mostly) forgotten.
    int forgotten = 0;
    for (std::uint64_t id = 1; id <= 100; ++id) forgotten += cache.contains(id) ? 0 : 1;
    EXPECT_GT(forgotten, 90);
}

TEST(SlidingBloomTest, DetectsDuplicates) {
    SlidingBloom bloom(1000);
    EXPECT_TRUE(bloom.insert_if_new(7));
    EXPECT_FALSE(bloom.insert_if_new(7));
    EXPECT_TRUE(bloom.probably_contains(7));
}

TEST(SlidingBloomTest, RejectsZeroCapacity) {
    EXPECT_THROW(SlidingBloom(0), std::invalid_argument);
}

TEST(SlidingBloomTest, FalsePositiveRateNearOnePercent) {
    SlidingBloom bloom(10000);
    Rng rng(2);
    for (int i = 0; i < 9000; ++i) bloom.insert_if_new(rng.next_u64());
    int false_positives = 0;
    const int kProbes = 20000;
    for (int i = 0; i < kProbes; ++i) {
        // Fresh ids from an independent stream.
        if (bloom.probably_contains(mix64(0xabcdef ^ static_cast<std::uint64_t>(i)))) {
            ++false_positives;
        }
    }
    EXPECT_LT(static_cast<double>(false_positives) / kProbes, 0.05);
}

TEST(SlidingBloomTest, SlidesGenerations) {
    SlidingBloom bloom(100);
    for (std::uint64_t id = 1; id <= 1000; ++id) bloom.insert_if_new(id);
    EXPECT_GT(bloom.generation_rotations(), 0u);
    // Recent generation is still remembered.
    EXPECT_TRUE(bloom.probably_contains(1000));
    // Ids older than two generations are forgotten.
    EXPECT_FALSE(bloom.probably_contains(1));
}

TEST(SeenCacheTest, CapacityReportsRequestedAndSlotCountRoundedUp) {
    // 1000 rounds up to 256 sets x 4 ways = 1024 slots; capacity() must keep
    // reporting what the caller asked for.
    SeenCache cache(1000);
    EXPECT_EQ(cache.capacity(), 1000u);
    EXPECT_EQ(cache.slot_count(), 1024u);
    // Exact power-of-two requests round to themselves.
    SeenCache exact(1 << 10);
    EXPECT_EQ(exact.capacity(), 1u << 10);
    EXPECT_EQ(exact.slot_count(), 1u << 10);
}

TEST(SlidingBloomTest, RefreshedIdSurvivesTwoGenerationsPastLastTouch) {
    // Regression: an id found only in previous_ must be re-set into current_,
    // so a still-hot id survives rotations as long as it keeps being touched.
    SlidingBloom bloom(100);
    ASSERT_TRUE(bloom.insert_if_new(0xfeedULL));
    // Fill until one rotation: 0xfeed now lives only in previous_.
    const auto first = bloom.generation_rotations();
    for (std::uint64_t id = 1; bloom.generation_rotations() == first; ++id) {
        bloom.insert_if_new(0x100000 + id);
    }
    // Still a duplicate, but the touch must refresh it into current_.
    EXPECT_FALSE(bloom.insert_if_new(0xfeedULL));
    // Force a second rotation; before the fix 0xfeed was forgotten here.
    const auto second = bloom.generation_rotations();
    for (std::uint64_t id = 1; bloom.generation_rotations() == second; ++id) {
        bloom.insert_if_new(0x200000 + id);
    }
    EXPECT_TRUE(bloom.probably_contains(0xfeedULL));
}

TEST(SlidingBloomTest, RecentWindowRetained) {
    SlidingBloom bloom(1000);
    for (std::uint64_t id = 1; id <= 1500; ++id) bloom.insert_if_new(id);
    // The last generation's worth of ids must still be present.
    int seen = 0;
    for (std::uint64_t id = 1400; id <= 1500; ++id) seen += bloom.probably_contains(id) ? 1 : 0;
    EXPECT_EQ(seen, 101);
}

}  // namespace
}  // namespace gossipc
