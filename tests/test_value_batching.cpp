// End-to-end value batching (DESIGN.md §14): composite proposals must be
// invisible to consumers — every client value is delivered exactly once, in
// per-client submission order, in all three setups — while the coordinator
// counters show the batching actually happened. Also covers the pending-cap
// overload path (shed values recover via origin retransmission) and the
// pipelined/fanout-limited gossip counters.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/semantic_gossip.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

ExperimentConfig batching_config(Setup setup, std::uint32_t batch_size) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = 7;
    cfg.total_rate = 260.0;  // enough concurrency for real multi-value batches
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(1.5);
    cfg.batch_size = batch_size;
    return cfg;
}

std::uint64_t metric(const ExperimentResult& result, const std::string& name) {
    for (const auto& s : result.metrics) {
        if (s.name == name) return static_cast<std::uint64_t>(s.value);
    }
    ADD_FAILURE() << "metric not registered: " << name;
    return 0;
}

class BatchingSweep : public ::testing::TestWithParam<Setup> {};

// The tentpole contract: with batching on, downstream order and completeness
// are exactly what an unbatched run guarantees — per client value, not per
// composite.
TEST_P(BatchingSweep, PerValueDeliveryOrderAndCompleteness) {
    const ExperimentConfig cfg = batching_config(GetParam(), 8);
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_EQ(result.workload.not_ordered, 0u) << setup_name(cfg.setup);
    EXPECT_GT(result.workload.submitted, 0u);
    // Batching actually engaged (the whole point of the high rate).
    EXPECT_GT(metric(result, "paxos.batches_proposed"), 0u);
    EXPECT_GT(metric(result, "paxos.batched_values"), 0u);

    // Walk the decided log of every process, unpacking composites: each
    // client's values appear in strictly increasing sequence order, and no
    // client value is delivered twice.
    for (ProcessId id = 0; id < cfg.n; ++id) {
        auto& learner = d.process(id).learner();
        std::map<std::int32_t, std::int64_t> last_seq;
        std::set<ValueId> seen;
        for (InstanceId i = 1; i < learner.frontier(); ++i) {
            const auto v = learner.decided_value(i);
            ASSERT_TRUE(v.has_value()) << "gap at p" << id << " instance " << i;
            std::vector<Value> units;
            if (v->is_batch()) {
                EXPECT_LT(v->id.client, 0);  // synthesized coordinator identity
                units.assign(v->batch.begin(), v->batch.end());
            } else {
                units.push_back(*v);
            }
            for (const Value& u : units) {
                EXPECT_FALSE(u.is_batch()) << "nested composite decided";
                ASSERT_GE(u.id.client, 0);
                ASSERT_LT(u.id.client, cfg.num_clients);
                EXPECT_TRUE(seen.insert(u.id).second)
                    << "value " << u.id.client << ":" << u.id.seq
                    << " delivered twice at p" << id;
                const auto it = last_seq.find(u.id.client);
                if (it != last_seq.end()) {
                    EXPECT_LT(it->second, u.id.seq)
                        << "client " << u.id.client << " out of order at p" << id;
                }
                last_seq[u.id.client] = u.id.seq;
            }
        }
        EXPECT_FALSE(seen.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Setups, BatchingSweep,
                         ::testing::Values(Setup::Baseline, Setup::Gossip,
                                           Setup::SemanticGossip),
                         [](const ::testing::TestParamInfo<Setup>& info) {
                             return std::string(setup_name(info.param));
                         });

// Low-load path: with batches that never fill, the batch_delay timer is what
// flushes them — values must not stall behind an unfilled batch.
TEST(ValueBatching, TimerFlushCarriesPartialBatchesAtLowLoad) {
    ExperimentConfig cfg = batching_config(Setup::Gossip, 64);
    cfg.total_rate = 13.0;  // the paper's §3.2 low-load point: batches never fill
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_EQ(result.workload.not_ordered, 0u);
    EXPECT_GT(result.workload.completed, 0u);
    EXPECT_GT(metric(result, "paxos.batch_timer_flushes"), 0u);
}

// Overload shedding is lossless end-to-end: a tiny pending cap sheds most of
// an initial burst, but origin retransmission re-offers the shed values and
// every one of them is eventually ordered.
TEST(ValueBatching, ShedValuesRecoverViaOriginRetransmission) {
    ExperimentConfig cfg = batching_config(Setup::Gossip, 1);
    cfg.pending_cap = 2;
    Deployment d(cfg);
    d.start_processes();
    // A burst submitted before Phase 1 completes must overflow the cap.
    for (int s = 1; s <= 10; ++s) {
        d.process(1).post_submit(testutil::make_value(42, s));
    }
    d.simulator().run_until(SimTime::seconds(10));

    const Coordinator* coord = d.process(0).coordinator();
    ASSERT_NE(coord, nullptr);
    EXPECT_GT(coord->counters().values_shed, 0u);
    EXPECT_EQ(d.process(0).learner().delivered_count(), 10u);
    const auto result = d.collect();
    EXPECT_GT(metric(result, "paxos.values_shed"), 0u);
}

// Pipelined dissemination + fanout restriction engage and are observable.
TEST(ValueBatching, PipelinedForwardsAndFanoutCountersEngage) {
    ExperimentConfig cfg = batching_config(Setup::Gossip, 8);
    cfg.strategy = GossipStrategy::Pull;
    cfg.pipeline = true;
    cfg.fanout = 2;
    cfg.adaptive_fanout = true;
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_EQ(result.workload.not_ordered, 0u);
    EXPECT_GT(metric(result, "gossip.pipelined_forwards"), 0u);
    EXPECT_GT(metric(result, "gossip.fanout_limited"), 0u);
    // Widening needs sustained queue pressure; at this scale just require
    // the counter to exist and stay consistent with the limited count.
    EXPECT_LE(metric(result, "gossip.fanout_widened"),
              metric(result, "gossip.fanout_limited") +
                  metric(result, "gossip.fanout_widened"));
}

// Regression: a crash that lands between arming the flush timer and its
// firing silently drops the one-shot callback. The armed state must not
// outlive the dropped timer — with the old boolean flag it did, and the
// coordinator never timer-flushed again until its next Phase 1: every
// post-restart partial batch stalled until a full batch formed. The
// stale-deadline re-arm detects the drop on the next client arrival.
TEST(ValueBatching, DroppedFlushTimerRearmsAfterCrashRestart) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = 7;
    cfg.batch_size = 8;
    cfg.batch_delay = SimTime::millis(20);
    cfg.faults.crash(SimTime::millis(400), 0);    // eats the armed timer
    cfg.faults.restart(SimTime::millis(450), 0);  // memory (and batch) intact
    Deployment d(cfg);
    d.start_processes();
    auto& sim = d.simulator();
    // Park a partial batch just before the crash: the first arrival arms the
    // 20 ms timer, due after the crash point.
    sim.schedule_at(SimTime::millis(390), [&d] {
        d.process(0).post_submit(testutil::make_value(7, 1));
        d.process(0).post_submit(testutil::make_value(7, 2));
    });
    // Post-restart arrival: must re-arm the (dropped) timer and flush all
    // three values; a full batch of 8 never forms in this run.
    sim.schedule_at(SimTime::millis(600), [&d] {
        d.process(0).post_submit(testutil::make_value(7, 3));
    });
    sim.run_until(SimTime::seconds(5));

    // One decided instance carrying all three values as a composite; with
    // the stale-flag bug nothing is ever flushed and the count stays 0.
    ASSERT_EQ(d.process(0).learner().delivered_count(), 1u);
    const auto v = d.process(0).learner().decided_value(1);
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->is_batch());
    EXPECT_EQ(v->batch.size(), 3u);
    ASSERT_NE(d.process(0).coordinator(), nullptr);
    EXPECT_GT(d.process(0).coordinator()->counters().timer_flushes, 0u);
}

// Determinism: batching does not break replayability — two runs of the same
// config decide identical logs.
TEST(ValueBatching, BatchedRunsAreDeterministic) {
    const ExperimentConfig cfg = batching_config(Setup::SemanticGossip, 8);
    Deployment a(cfg);
    a.run();
    Deployment b(cfg);
    b.run();
    auto& la = a.process(0).learner();
    auto& lb = b.process(0).learner();
    ASSERT_EQ(la.frontier(), lb.frontier());
    for (InstanceId i = 1; i < la.frontier(); ++i) {
        const auto va = la.decided_value(i);
        const auto vb = lb.decided_value(i);
        ASSERT_TRUE(va.has_value());
        ASSERT_TRUE(vb.has_value());
        EXPECT_EQ(va->digest(), vb->digest()) << "instance " << i;
    }
}

}  // namespace
}  // namespace gossipc
