// Wire codec round-trip and golden byte-layout tests (DESIGN.md §10).
//
// Every encodable body type — all ten Paxos messages, the five Raft
// messages, gossip envelopes, and pull digests — is driven through
// encode_body/decode_body and compared field by field, including the edge
// cases the format must survive: empty values, values at the size cap, and
// aggregates carrying every sender in the cluster. The golden tests pin the
// exact byte sequences of representative messages so any accidental layout
// change (field reorder, width change, tag renumber) fails loudly instead of
// silently breaking cross-version interop.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "gossip/gossip_node.hpp"
#include "paxos/message.hpp"
#include "raft/message.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace gossipc {
namespace {

using wire::WireError;

std::span<const std::uint8_t> as_span(const std::vector<std::uint8_t>& v) {
    return std::span<const std::uint8_t>(v.data(), v.size());
}

/// Encodes, decodes, and returns the decoded body, asserting success.
wire::DecodedBody round_trip(const MessageBody& body) {
    const std::vector<std::uint8_t> bytes = wire::encode_body(body);
    EXPECT_FALSE(bytes.empty());
    wire::DecodedBody decoded = wire::decode_body(as_span(bytes));
    EXPECT_TRUE(decoded.ok()) << wire::wire_error_name(decoded.error);
    EXPECT_NE(decoded.body, nullptr);
    return decoded;
}

template <typename T>
const T& decoded_as(const wire::DecodedBody& d, BodyKind kind) {
    EXPECT_EQ(d.body->kind(), kind);
    return static_cast<const T&>(*d.body);
}

Value make_value(std::int32_t client, std::int64_t seq, std::uint32_t size = 1024) {
    Value v;
    v.id = ValueId{client, seq};
    v.size_bytes = size;
    return v;
}

// ---- Paxos round-trips -----------------------------------------------------

TEST(WireCodec, ClientValueRoundTrip) {
    const ClientValueMsg msg(3, make_value(3, 17), 2, 0, true);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<ClientValueMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::ClientValue);
    EXPECT_EQ(m.sender(), 3);
    EXPECT_EQ(m.value(), msg.value());
    EXPECT_EQ(m.attempt(), 2);
    EXPECT_EQ(m.target(), 0);
    EXPECT_TRUE(m.forwarded());
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, ClientValueEmptyValue) {
    const ClientValueMsg msg(0, make_value(0, 1, /*size=*/0));
    const auto d = round_trip(msg);
    const auto& m = decoded_as<ClientValueMsg>(d, BodyKind::Paxos);
    EXPECT_EQ(m.value().size_bytes, 0u);
    EXPECT_EQ(m.target(), -1);
    EXPECT_FALSE(m.forwarded());
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, ClientValueMaxSizeValue) {
    const ClientValueMsg msg(1, make_value(1, 2, wire::kMaxValueBytes));
    const auto d = round_trip(msg);
    const auto& m = decoded_as<ClientValueMsg>(d, BodyKind::Paxos);
    EXPECT_EQ(m.value().size_bytes, wire::kMaxValueBytes);
}

TEST(WireCodec, ValueAboveCapRejected) {
    const ClientValueMsg msg(1, make_value(1, 2, wire::kMaxValueBytes + 1));
    const std::vector<std::uint8_t> bytes = wire::encode_body(msg);
    const auto d = wire::decode_body(as_span(bytes));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::Oversized);
    EXPECT_EQ(d.body, nullptr);
}

// ---- Composite (batched) values (DESIGN.md §14) ----------------------------

Value make_batch(std::int32_t coordinator, std::int64_t seq, std::size_t n) {
    std::vector<Value> components;
    for (std::size_t i = 0; i < n; ++i) {
        components.push_back(make_value(static_cast<std::int32_t>(i),
                                        static_cast<std::int64_t>(100 + i), 512));
    }
    return make_batch_value(ValueId{-(coordinator + 1), seq}, std::move(components));
}

TEST(WireCodec, CompositeValueRoundTrip) {
    const Value batch = make_batch(0, 7, 5);
    const Phase2aMsg msg(0, 3, 1, batch);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase2aMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.value().batch.size(), 5u);
    EXPECT_EQ(m.value(), batch);
    EXPECT_EQ(m.value().digest(), batch.digest());
}

TEST(WireCodec, CompositeValueInDecisionRoundTrip) {
    const Value batch = make_batch(2, 9, 3);
    const DecisionMsg msg(2, 11, batch.id, batch.digest(), batch);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<DecisionMsg>(d, BodyKind::Paxos);
    ASSERT_TRUE(m.full_value().has_value());
    EXPECT_EQ(*m.full_value(), batch);
}

TEST(WireCodec, CompositeValueInPhase1bRoundTrip) {
    std::vector<AcceptedEntry> accepted;
    AcceptedEntry e;
    e.instance = 4;
    e.vround = 2;
    e.value = make_batch(1, 3, 2);
    accepted.push_back(e);
    const Phase1bMsg msg(1, 5, 1, std::move(accepted));
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase1bMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.accepted().size(), 1u);
    EXPECT_EQ(m.accepted()[0].value.batch.size(), 2u);
    EXPECT_EQ(m.accepted()[0].value, make_batch(1, 3, 2));
}

TEST(WireCodec, CompositeBatchCountAboveCapRejected) {
    // Hand-corrupt the encoded count: a frame announcing more components
    // than kMaxBatchEntries must be rejected before any allocation.
    const Phase2aMsg msg(0, 1, 1, make_batch(0, 1, 2));
    std::vector<std::uint8_t> bytes = wire::encode_body(msg);
    // Layout: kind, tag, sender(4), group(4), instance(8), round(4), value
    // triple (16), then the u16 count at offset 2 + 4 + 4 + 8 + 4 + 16 = 38.
    const std::size_t count_off = 38;
    ASSERT_EQ(bytes[count_off], 2);
    bytes[count_off] = 0xff;
    bytes[count_off + 1] = 0xff;  // count = 65535 > kMaxBatchEntries
    const auto d = wire::decode_body(as_span(bytes));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::LimitExceeded);
}

TEST(WireCodec, CompositeTruncatedBatchRejected) {
    const Phase2aMsg msg(0, 1, 1, make_batch(0, 1, 4));
    std::vector<std::uint8_t> bytes = wire::encode_body(msg);
    bytes.resize(bytes.size() - 8);  // chop into the last component
    const auto d = wire::decode_body(as_span(bytes));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::Truncated);
}

TEST(WireCodec, CompositeDigestDistinguishesContent) {
    // Same synthesized id, different components: the digest must differ
    // (all decision agreement is digest-keyed).
    Value a = make_batch(0, 1, 3);
    Value b = make_batch(0, 1, 3);
    b.batch[1].id.seq = 999;
    EXPECT_NE(a.digest(), b.digest());
    // And a composite can never collide with a plain value sharing its id.
    Value plain;
    plain.id = a.id;
    plain.size_bytes = a.size_bytes;
    EXPECT_NE(a.digest(), plain.digest());
}

TEST(WireCodec, Phase1aRoundTrip) {
    const Phase1aMsg msg(4, 7, 123);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase1aMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::Phase1a);
    EXPECT_EQ(m.sender(), 4);
    EXPECT_EQ(m.round(), 7);
    EXPECT_EQ(m.from_instance(), 123);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, Phase1bEmptyRoundTrip) {
    const Phase1bMsg msg(2, 7, 1, {});
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase1bMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::Phase1b);
    EXPECT_EQ(m.sender(), 2);
    EXPECT_EQ(m.round(), 7);
    EXPECT_EQ(m.from_instance(), 1);
    EXPECT_TRUE(m.accepted().empty());
}

TEST(WireCodec, Phase1bWithEntriesRoundTrip) {
    std::vector<AcceptedEntry> accepted;
    for (int i = 0; i < 5; ++i) {
        AcceptedEntry e;
        e.instance = 10 + i;
        e.vround = i;
        e.value = make_value(i, 100 + i, 512 * (i + 1));
        accepted.push_back(e);
    }
    const Phase1bMsg msg(3, 9, 10, accepted);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase1bMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.accepted().size(), accepted.size());
    for (std::size_t i = 0; i < accepted.size(); ++i) {
        EXPECT_EQ(m.accepted()[i].instance, accepted[i].instance);
        EXPECT_EQ(m.accepted()[i].vround, accepted[i].vround);
        EXPECT_EQ(m.accepted()[i].value, accepted[i].value);
    }
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, Phase2aRoundTrip) {
    const Phase2aMsg msg(0, 42, 3, make_value(2, 8), 1);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase2aMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::Phase2a);
    EXPECT_EQ(m.sender(), 0);
    EXPECT_EQ(m.instance(), 42);
    EXPECT_EQ(m.round(), 3);
    EXPECT_EQ(m.value(), msg.value());
    EXPECT_EQ(m.attempt(), 1);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, Phase2bRoundTrip) {
    const Phase2bMsg msg(5, 42, 3, ValueId{2, 8}, 0xfeedfaceULL, 1);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase2bMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::Phase2b);
    EXPECT_EQ(m.sender(), 5);
    EXPECT_EQ(m.instance(), 42);
    EXPECT_EQ(m.round(), 3);
    EXPECT_EQ(m.value_id(), (ValueId{2, 8}));
    EXPECT_EQ(m.value_digest(), 0xfeedfaceULL);
    EXPECT_EQ(m.attempt(), 1);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, Phase2bAggregateAllSendersRoundTrip) {
    // The headline aggregation case: one aggregate carrying acknowledgements
    // from every process of a large cluster.
    constexpr int kCluster = 257;
    std::vector<ProcessId> senders(kCluster);
    std::iota(senders.begin(), senders.end(), 0);
    const Phase2bAggregateMsg msg(9, 42, 3, ValueId{2, 8}, 0xfeedfaceULL, senders, 2);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase2bAggregateMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::Phase2bAggregate);
    EXPECT_EQ(m.sender(), 9);
    EXPECT_EQ(m.instance(), 42);
    EXPECT_EQ(m.round(), 3);
    EXPECT_EQ(m.value_id(), (ValueId{2, 8}));
    EXPECT_EQ(m.value_digest(), 0xfeedfaceULL);
    EXPECT_EQ(m.senders(), senders);
    EXPECT_EQ(m.attempt(), 2);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, Phase2bAggregateEmptySendersRoundTrip) {
    const Phase2bAggregateMsg msg(9, 1, 0, ValueId{0, 0}, 0, {}, 0);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase2bAggregateMsg>(d, BodyKind::Paxos);
    EXPECT_TRUE(m.senders().empty());
}

TEST(WireCodec, DecisionWithoutValueRoundTrip) {
    const DecisionMsg msg(0, 42, ValueId{2, 8}, 0xfeedfaceULL, std::nullopt, 1);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<DecisionMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::Decision);
    EXPECT_EQ(m.sender(), 0);
    EXPECT_EQ(m.instance(), 42);
    EXPECT_EQ(m.value_id(), (ValueId{2, 8}));
    EXPECT_EQ(m.value_digest(), 0xfeedfaceULL);
    EXPECT_FALSE(m.full_value().has_value());
    EXPECT_EQ(m.attempt(), 1);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, DecisionWithValueRoundTrip) {
    const Value full = make_value(2, 8, 2048);
    const DecisionMsg msg(0, 42, full.id, full.digest(), full, 0);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<DecisionMsg>(d, BodyKind::Paxos);
    ASSERT_TRUE(m.full_value().has_value());
    EXPECT_EQ(*m.full_value(), full);
}

TEST(WireCodec, LearnRequestRoundTrip) {
    const LearnRequestMsg msg(6, 42, 3, 1);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<LearnRequestMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::LearnRequest);
    EXPECT_EQ(m.sender(), 6);
    EXPECT_EQ(m.instance(), 42);
    EXPECT_EQ(m.attempt(), 3);
    EXPECT_EQ(m.target(), 1);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, HeartbeatRoundTrip) {
    const HeartbeatMsg msg(7, 0x1122334455667788ULL, 42);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<HeartbeatMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::Heartbeat);
    EXPECT_EQ(m.sender(), 7);
    EXPECT_EQ(m.seq(), 0x1122334455667788ULL);
    EXPECT_EQ(m.frontier(), 42);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, MultiGroupHeartbeatRoundTrip) {
    const HeartbeatMsg msg(7, 11, std::vector<InstanceId>{5, 1, 9, 3});
    const auto d = round_trip(msg);
    const auto& m = decoded_as<HeartbeatMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.frontiers().size(), 4u);
    EXPECT_EQ(m.frontiers(), msg.frontiers());
    EXPECT_EQ(m.frontier_for(0), 5);
    EXPECT_EQ(m.frontier_for(3), 3);
}

TEST(WireCodec, HeartbeatZeroFrontierCountRejected) {
    const HeartbeatMsg msg(7, 11, 42);
    std::vector<std::uint8_t> bytes = wire::encode_body(msg);
    // u16 count at kind(1) + tag(1) + sender(4) + group(4) + seq(8) = 18.
    ASSERT_EQ(bytes[18], 1);
    bytes[18] = 0;
    bytes.resize(18 + 2);  // drop the frontier the count no longer announces
    const auto d = wire::decode_body(as_span(bytes));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::BadField);
}

TEST(WireCodec, GroupTagRoundTrip) {
    // v3: every Paxos body carries its consensus group after the sender.
    Phase2bMsg msg(5, 42, 3, ValueId{2, 8}, 0xfeedfaceULL, 1);
    msg.set_group(7);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<Phase2bMsg>(d, BodyKind::Paxos);
    EXPECT_EQ(m.group(), 7);
    // The group participates in the gossip id, so the same vote for two
    // different groups never dedups against itself.
    Phase2bMsg other(5, 42, 3, ValueId{2, 8}, 0xfeedfaceULL, 1);
    other.set_group(6);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
    EXPECT_NE(m.unique_key(), other.unique_key());
}

TEST(WireCodec, GroupBatchRoundTrip) {
    // Cross-group aggregation (DESIGN.md §15): same-verb messages for
    // different groups packed into one body, unpacked with ids intact.
    std::vector<PaxosMessagePtr> entries;
    for (GroupId g = 0; g < 3; ++g) {
        auto e = std::make_shared<Phase2bMsg>(5, 42, 3, ValueId{2, 8}, 0xfeedfaceULL, 1);
        e->set_group(g);
        entries.push_back(std::move(e));
    }
    const GroupBatchMsg msg(5, PaxosMsgType::Phase2b, entries);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<GroupBatchMsg>(d, BodyKind::Paxos);
    ASSERT_EQ(m.type(), PaxosMsgType::GroupBatch);
    EXPECT_EQ(m.sender(), 5);
    EXPECT_EQ(m.verb(), PaxosMsgType::Phase2b);
    ASSERT_EQ(m.entries().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(m.entries()[i]->group(), static_cast<GroupId>(i));
        // Decoded entries regenerate the originals' gossip ids exactly —
        // the S-AGG losslessness monitors match votes by these keys.
        EXPECT_EQ(m.entries()[i]->unique_key(), entries[i]->unique_key());
    }
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, GroupBatchOfDecisionsRoundTrip) {
    std::vector<PaxosMessagePtr> entries;
    for (GroupId g = 1; g <= 2; ++g) {
        auto e = std::make_shared<DecisionMsg>(0, 42, ValueId{2, 8}, 0xfeedfaceULL,
                                               std::nullopt, 1);
        e->set_group(g);
        entries.push_back(std::move(e));
    }
    const GroupBatchMsg msg(0, PaxosMsgType::Decision, entries);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<GroupBatchMsg>(d, BodyKind::Paxos);
    EXPECT_EQ(m.verb(), PaxosMsgType::Decision);
    ASSERT_EQ(m.entries().size(), 2u);
    EXPECT_EQ(m.entries()[0]->unique_key(), entries[0]->unique_key());
}

TEST(WireCodec, GroupBatchEmptyRoundTrip) {
    const GroupBatchMsg msg(3, PaxosMsgType::Phase2b, {});
    const auto d = round_trip(msg);
    const auto& m = decoded_as<GroupBatchMsg>(d, BodyKind::Paxos);
    EXPECT_TRUE(m.entries().empty());
}

TEST(WireCodec, NestedGroupBatchRejected) {
    // A batch inside a batch is malformed — mirrors the envelope's
    // nested-envelope rejection and bounds decode recursion.
    auto inner = std::make_shared<GroupBatchMsg>(1, PaxosMsgType::Phase2b,
                                                 std::vector<PaxosMessagePtr>{});
    const GroupBatchMsg msg(1, PaxosMsgType::Phase2b,
                            std::vector<PaxosMessagePtr>{inner});
    const std::vector<std::uint8_t> bytes = wire::encode_body(msg);
    const auto d = wire::decode_body(as_span(bytes));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::BadField);
}

TEST(WireCodec, GroupBatchVerbMismatchRejected) {
    // The batch verb claims Phase2b but an entry is a Decision.
    auto e = std::make_shared<DecisionMsg>(0, 42, ValueId{2, 8}, 0xfeedfaceULL,
                                           std::nullopt, 1);
    const GroupBatchMsg msg(0, PaxosMsgType::Phase2b,
                            std::vector<PaxosMessagePtr>{e});
    const std::vector<std::uint8_t> bytes = wire::encode_body(msg);
    const auto d = wire::decode_body(as_span(bytes));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::BadField);
}

TEST(WireCodec, NegativeFieldsRoundTrip) {
    // Sentinel values (-1 ids, negative rounds) must survive the unsigned
    // little-endian encoding.
    const ClientValueMsg msg(-1, make_value(-1, -1), -1, -1, false);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<ClientValueMsg>(d, BodyKind::Paxos);
    EXPECT_EQ(m.sender(), -1);
    EXPECT_EQ(m.value().id.client, -1);
    EXPECT_EQ(m.value().id.seq, -1);
    EXPECT_EQ(m.attempt(), -1);
    EXPECT_EQ(m.target(), -1);
}

// ---- Raft round-trips ------------------------------------------------------

TEST(WireCodec, RaftClientForwardRoundTrip) {
    const ClientForwardMsg msg(3, make_value(3, 17), 2);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<ClientForwardMsg>(d, BodyKind::Raft);
    ASSERT_EQ(m.type(), RaftMsgType::ClientForward);
    EXPECT_EQ(m.sender(), 3);
    EXPECT_EQ(m.value(), msg.value());
    EXPECT_EQ(m.attempt(), 2);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, RaftAppendRoundTrip) {
    const AppendMsg msg(0, 2, 42, make_value(1, 9));
    const auto d = round_trip(msg);
    const auto& m = decoded_as<AppendMsg>(d, BodyKind::Raft);
    ASSERT_EQ(m.type(), RaftMsgType::Append);
    EXPECT_EQ(m.sender(), 0);
    EXPECT_EQ(m.term(), 2);
    EXPECT_EQ(m.index(), 42);
    EXPECT_EQ(m.value(), msg.value());
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, RaftAckRoundTrip) {
    const AckMsg msg(4, 2, 42, 0xabcdef01ULL);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<AckMsg>(d, BodyKind::Raft);
    ASSERT_EQ(m.type(), RaftMsgType::Ack);
    EXPECT_EQ(m.sender(), 4);
    EXPECT_EQ(m.term(), 2);
    EXPECT_EQ(m.index(), 42);
    EXPECT_EQ(m.value_digest(), 0xabcdef01ULL);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, RaftAckAggregateAllSendersRoundTrip) {
    constexpr int kCluster = 64;
    std::vector<ProcessId> senders(kCluster);
    std::iota(senders.begin(), senders.end(), 0);
    const AckAggregateMsg msg(5, 2, 42, 0xabcdef01ULL, senders);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<AckAggregateMsg>(d, BodyKind::Raft);
    ASSERT_EQ(m.type(), RaftMsgType::AckAggregate);
    EXPECT_EQ(m.senders(), senders);
    EXPECT_EQ(m.value_digest(), 0xabcdef01ULL);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

TEST(WireCodec, RaftCommitRoundTrip) {
    const CommitMsg msg(0, 2, 42, 0xabcdef01ULL);
    const auto d = round_trip(msg);
    const auto& m = decoded_as<CommitMsg>(d, BodyKind::Raft);
    ASSERT_EQ(m.type(), RaftMsgType::Commit);
    EXPECT_EQ(m.sender(), 0);
    EXPECT_EQ(m.term(), 2);
    EXPECT_EQ(m.index(), 42);
    EXPECT_EQ(m.value_digest(), 0xabcdef01ULL);
    EXPECT_EQ(m.unique_key(), msg.unique_key());
}

// ---- Envelope / digest round-trips -----------------------------------------

TEST(WireCodec, GossipEnvelopeWithPaxosPayloadRoundTrip) {
    auto payload = std::make_shared<Phase2bMsg>(5, 42, 3, ValueId{2, 8}, 0xfeedfaceULL, 1);
    GossipAppMessage app;
    app.id = payload->unique_key();
    app.origin = 5;
    app.payload = payload;
    app.aggregated = false;
    app.hops = 3;
    const GossipEnvelope env(app);
    const auto d = round_trip(env);
    const auto& e = decoded_as<GossipEnvelope>(d, BodyKind::GossipEnvelope);
    EXPECT_EQ(e.message().id, app.id);
    EXPECT_EQ(e.message().origin, 5);
    EXPECT_EQ(e.message().hops, 3);
    EXPECT_FALSE(e.message().aggregated);
    ASSERT_NE(e.message().payload, nullptr);
    const auto& inner = static_cast<const Phase2bMsg&>(*e.message().payload);
    EXPECT_EQ(inner.instance(), 42);
    // Identity must survive the wire: the decoded payload regenerates the
    // exact gossip id, so duplicate suppression works across real links.
    EXPECT_EQ(inner.unique_key(), app.id);
}

TEST(WireCodec, EnvelopeAggregatedFlagRoundTrip) {
    auto payload =
        std::make_shared<Phase2bAggregateMsg>(9, 42, 3, ValueId{2, 8}, 0xfeedfaceULL,
                                              std::vector<ProcessId>{0, 1, 2, 3, 4}, 0);
    GossipAppMessage app;
    app.id = payload->unique_key();
    app.origin = 9;
    app.payload = payload;
    app.aggregated = true;
    app.hops = 1;
    const GossipEnvelope env(app);
    const auto d = round_trip(env);
    const auto& e = decoded_as<GossipEnvelope>(d, BodyKind::GossipEnvelope);
    EXPECT_TRUE(e.message().aggregated);
    const auto& inner = static_cast<const Phase2bAggregateMsg&>(*e.message().payload);
    EXPECT_EQ(inner.senders().size(), 5u);
}

TEST(WireCodec, EnvelopeWithRaftPayloadRoundTrip) {
    auto payload = std::make_shared<AckMsg>(4, 2, 42, 0xabcdef01ULL);
    GossipAppMessage app;
    app.id = payload->unique_key();
    app.origin = 4;
    app.payload = payload;
    const GossipEnvelope env(app);
    const auto d = round_trip(env);
    const auto& e = decoded_as<GossipEnvelope>(d, BodyKind::GossipEnvelope);
    ASSERT_EQ(e.message().payload->kind(), BodyKind::Raft);
    EXPECT_EQ(static_cast<const AckMsg&>(*e.message().payload).unique_key(), app.id);
}

TEST(WireCodec, PullDigestRoundTrip) {
    const PullDigest digest({0x1ULL, 0xffffffffffffffffULL, 42});
    const auto d = round_trip(digest);
    const auto& m = decoded_as<PullDigest>(d, BodyKind::PullDigest);
    EXPECT_EQ(m.ids(), digest.ids());
}

TEST(WireCodec, PullDigestEmptyRoundTrip) {
    const PullDigest digest({});
    const auto d = round_trip(digest);
    const auto& m = decoded_as<PullDigest>(d, BodyKind::PullDigest);
    EXPECT_TRUE(m.ids().empty());
}

TEST(WireCodec, OtherBodyKindIsUnencodable) {
    struct FakeBody final : MessageBody {
        std::uint32_t wire_size() const override { return 1; }
        std::string describe() const override { return "fake"; }
    };
    EXPECT_TRUE(wire::encode_body(FakeBody{}).empty());
}

TEST(WireCodec, TrailingBytesRejected) {
    const HeartbeatMsg msg(7, 1, 1);
    std::vector<std::uint8_t> bytes = wire::encode_body(msg);
    bytes.push_back(0x00);
    const auto d = wire::decode_body(as_span(bytes));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, WireError::TrailingBytes);
}

// ---- Golden byte layouts ---------------------------------------------------
//
// These pin wire version 3 exactly (v3 added the i32 consensus-group tag
// after every Paxos sender and the per-group heartbeat frontier vector;
// v2 added the u16 batch-component count to every encoded value). If one
// of them fails you have changed the wire format: bump wire::kWireVersion
// and update the golden bytes.

TEST(WireGolden, HeartbeatLayout) {
    const HeartbeatMsg msg(7, 0x1122334455667788ULL, 42);
    const std::vector<std::uint8_t> expected = {
        0x03,                                            // kind = Paxos
        0x09,                                            // tag = Heartbeat
        0x07, 0x00, 0x00, 0x00,                          // sender = 7 (i32 LE)
        0x00, 0x00, 0x00, 0x00,                          // group = 0 (i32 LE)
        0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // seq (u64 LE)
        0x01, 0x00,                                      // frontier count = 1 (u16)
        0x2a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // frontier[0] = 42 (i64 LE)
    };
    EXPECT_EQ(wire::encode_body(msg), expected);
}

TEST(WireGolden, MultiGroupHeartbeatLayout) {
    // A sharded node's heartbeat advertises one learner frontier per group.
    const HeartbeatMsg msg(7, 2, std::vector<InstanceId>{5, 1});
    const std::vector<std::uint8_t> expected = {
        0x03,                                            // kind = Paxos
        0x09,                                            // tag = Heartbeat
        0x07, 0x00, 0x00, 0x00,                          // sender = 7
        0x00, 0x00, 0x00, 0x00,                          // group = 0
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // seq = 2
        0x02, 0x00,                                      // frontier count = 2
        0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // frontier[0] = 5
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // frontier[1] = 1
    };
    EXPECT_EQ(wire::encode_body(msg), expected);
}

TEST(WireGolden, Phase2bLayout) {
    const Phase2bMsg msg(2, 5, 1, ValueId{3, 9}, 0xdeadbeefULL, 4);
    const std::vector<std::uint8_t> expected = {
        0x03,                                            // kind = Paxos
        0x05,                                            // tag = Phase2b
        0x02, 0x00, 0x00, 0x00,                          // sender = 2
        0x00, 0x00, 0x00, 0x00,                          // group = 0
        0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // instance = 5
        0x01, 0x00, 0x00, 0x00,                          // round = 1
        0x03, 0x00, 0x00, 0x00,                          // value_id.client = 3
        0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // value_id.seq = 9
        0xef, 0xbe, 0xad, 0xde, 0x00, 0x00, 0x00, 0x00,  // digest
        0x04, 0x00, 0x00, 0x00,                          // attempt = 4
    };
    EXPECT_EQ(wire::encode_body(msg), expected);
}

TEST(WireGolden, ClientValueLayout) {
    const ClientValueMsg msg(1, make_value(1, 2, 1024), 0, -1, false);
    const std::vector<std::uint8_t> expected = {
        0x03,                                            // kind = Paxos
        0x01,                                            // tag = ClientValue
        0x01, 0x00, 0x00, 0x00,                          // sender = 1
        0x00, 0x00, 0x00, 0x00,                          // group = 0
        0x01, 0x00, 0x00, 0x00,                          // value.id.client = 1
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // value.id.seq = 2
        0x00, 0x04, 0x00, 0x00,                          // value.size_bytes = 1024
        0x00, 0x00,                                      // batch count = 0 (plain)
        0x00, 0x00, 0x00, 0x00,                          // attempt = 0
        0xff, 0xff, 0xff, 0xff,                          // target = -1
        0x00,                                            // forwarded = false
    };
    EXPECT_EQ(wire::encode_body(msg), expected);
}

TEST(WireGolden, GroupBatchHeaderLayout) {
    // Cross-group batch (DESIGN.md §15): u8 verb tag, u16 entry count, then
    // each entry as a complete nested Paxos body (its own group tag).
    auto entry = std::make_shared<Phase2bMsg>(2, 5, 1, ValueId{3, 9}, 0xdeadbeefULL, 4);
    entry->set_group(6);
    const GroupBatchMsg msg(1, PaxosMsgType::Phase2b, {entry});
    const std::vector<std::uint8_t> bytes = wire::encode_body(msg);
    const std::vector<std::uint8_t> header = {
        0x03,                    // kind = Paxos
        0x0a,                    // tag = GroupBatch
        0x01, 0x00, 0x00, 0x00,  // sender (packer) = 1
        0x00, 0x00, 0x00, 0x00,  // group = 0 (the batch spans groups)
        0x05,                    // verb = Phase2b
        0x01, 0x00,              // entry count = 1
        0x05,                    // entry[0] tag = Phase2b (no kind byte)
        0x02, 0x00, 0x00, 0x00,  // entry[0] sender = 2
        0x06, 0x00, 0x00, 0x00,  // entry[0] group = 6
    };
    ASSERT_GE(bytes.size(), header.size());
    EXPECT_EQ(std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + header.size()),
              header);
}

TEST(WireGolden, RaftCommitLayout) {
    const CommitMsg msg(3, 2, 7, 0x0123456789abcdefULL);
    const std::vector<std::uint8_t> expected = {
        0x04,                                            // kind = Raft
        0x05,                                            // tag = Commit
        0x03, 0x00, 0x00, 0x00,                          // sender = 3
        0x02, 0x00, 0x00, 0x00,                          // term = 2
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // index = 7
        0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01,  // digest
    };
    EXPECT_EQ(wire::encode_body(msg), expected);
}

TEST(WireGolden, EnvelopeHeaderLayout) {
    auto payload = std::make_shared<HeartbeatMsg>(7, 1, 1);
    GossipAppMessage app;
    app.id = 0x0807060504030201ULL;
    app.origin = 7;
    app.payload = payload;
    app.aggregated = true;
    app.hops = 2;
    const std::vector<std::uint8_t> bytes = wire::encode_body(GossipEnvelope(app));
    const std::vector<std::uint8_t> header = {
        0x01,                                            // kind = GossipEnvelope
        0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,  // id (u64 LE)
        0x07, 0x00, 0x00, 0x00,                          // origin = 7
        0x02, 0x00,                                      // hops = 2 (u16)
        0x01,                                            // flags = aggregated
        0x03,                                            // nested kind = Paxos
        0x09,                                            // nested tag = Heartbeat
    };
    ASSERT_GE(bytes.size(), header.size());
    EXPECT_EQ(std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + header.size()),
              header);
}

TEST(WireGolden, PullDigestLayout) {
    const PullDigest digest({0x42ULL});
    const std::vector<std::uint8_t> expected = {
        0x02,                                            // kind = PullDigest
        0x01, 0x00, 0x00, 0x00,                          // count = 1
        0x42, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // id
    };
    EXPECT_EQ(wire::encode_body(digest), expected);
}

// ---- Framing ---------------------------------------------------------------

TEST(WireFrame, GoldenHeaderLayout) {
    const std::vector<std::uint8_t> payload = {0xaa, 0xbb};
    const std::vector<std::uint8_t> expected = {
        0x46, 0x57, 0x43, 0x47,  // magic 0x47435746 LE
        0x03,                    // version
        0x02,                    // type = Body
        0x00, 0x00,              // flags
        0x02, 0x00, 0x00, 0x00,  // length = 2
        0xaa, 0xbb,
    };
    EXPECT_EQ(wire::encode_frame(wire::FrameType::Body, as_span(payload)), expected);
}

TEST(WireFrame, HelloRoundTrip) {
    const wire::Hello hello{5, 8};
    const std::vector<std::uint8_t> bytes = wire::encode_hello_frame(hello);
    wire::FrameType type{};
    std::span<const std::uint8_t> payload;
    ASSERT_EQ(wire::decode_frame(as_span(bytes), type, payload), WireError::None);
    EXPECT_EQ(type, wire::FrameType::Hello);
    wire::Hello out;
    ASSERT_EQ(wire::decode_hello(payload, out), WireError::None);
    EXPECT_EQ(out.sender, 5);
    EXPECT_EQ(out.cluster_size, 8);
}

TEST(WireFrame, HelloRejectsInconsistentIdentity) {
    // A peer claiming an id outside its own cluster size is lying about one
    // of the two; the handshake rejects it rather than index out of range.
    const wire::Hello bad{5, 3};
    const std::vector<std::uint8_t> bytes = wire::encode_hello_frame(bad);
    wire::FrameType type{};
    std::span<const std::uint8_t> payload;
    ASSERT_EQ(wire::decode_frame(as_span(bytes), type, payload), WireError::None);
    wire::Hello out;
    EXPECT_EQ(wire::decode_hello(payload, out), WireError::BadField);
}

TEST(WireFrame, OneShotDecodeStrictLength) {
    const std::vector<std::uint8_t> payload = {0x01, 0x02, 0x03};
    std::vector<std::uint8_t> bytes = wire::encode_frame(wire::FrameType::Body, as_span(payload));
    wire::FrameType type{};
    std::span<const std::uint8_t> out;

    std::vector<std::uint8_t> short_buf(bytes.begin(), bytes.end() - 1);
    EXPECT_EQ(wire::decode_frame(as_span(short_buf), type, out), WireError::Truncated);

    bytes.push_back(0x00);
    EXPECT_EQ(wire::decode_frame(as_span(bytes), type, out), WireError::TrailingBytes);
}

TEST(WireFrame, ParserReassemblesByteAtATime) {
    // A frame must survive maximal TCP fragmentation: feed one byte at a
    // time and require exactly one frame at the end.
    const HeartbeatMsg msg(7, 9, 3);
    const std::vector<std::uint8_t> body = wire::encode_body(msg);
    const std::vector<std::uint8_t> bytes = wire::encode_frame(wire::FrameType::Body, as_span(body));

    wire::FrameParser parser;
    wire::Frame frame;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        parser.feed(std::span<const std::uint8_t>(&bytes[i], 1));
        ASSERT_EQ(parser.next(frame), wire::FrameParser::Result::NeedMore) << "at byte " << i;
    }
    parser.feed(std::span<const std::uint8_t>(&bytes.back(), 1));
    ASSERT_EQ(parser.next(frame), wire::FrameParser::Result::Frame);
    EXPECT_EQ(frame.type, wire::FrameType::Body);
    const auto d = wire::decode_body(frame.payload);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(static_cast<const HeartbeatMsg&>(*d.body).seq(), 9u);
    EXPECT_EQ(parser.next(frame), wire::FrameParser::Result::NeedMore);
    EXPECT_EQ(parser.buffered(), 0u);
}

TEST(WireFrame, ParserHandlesCoalescedFrames) {
    // The opposite of fragmentation: many frames arriving in one read.
    std::vector<std::uint8_t> stream;
    constexpr int kFrames = 200;
    for (int i = 0; i < kFrames; ++i) {
        const HeartbeatMsg msg(1, static_cast<std::uint64_t>(i), i);
        const std::vector<std::uint8_t> body = wire::encode_body(msg);
        const std::vector<std::uint8_t> f = wire::encode_frame(wire::FrameType::Body, as_span(body));
        stream.insert(stream.end(), f.begin(), f.end());
    }
    wire::FrameParser parser;
    parser.feed(as_span(stream));
    wire::Frame frame;
    for (int i = 0; i < kFrames; ++i) {
        ASSERT_EQ(parser.next(frame), wire::FrameParser::Result::Frame) << "frame " << i;
        const auto d = wire::decode_body(frame.payload);
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(static_cast<const HeartbeatMsg&>(*d.body).seq(),
                  static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(parser.next(frame), wire::FrameParser::Result::NeedMore);
}

TEST(WireFrame, EmptyPayloadFrame) {
    const std::vector<std::uint8_t> bytes =
        wire::encode_frame(wire::FrameType::Body, std::span<const std::uint8_t>());
    EXPECT_EQ(bytes.size(), wire::kFrameHeaderBytes);
    wire::FrameParser parser;
    parser.feed(as_span(bytes));
    wire::Frame frame;
    ASSERT_EQ(parser.next(frame), wire::FrameParser::Result::Frame);
    EXPECT_TRUE(frame.payload.empty());
}

}  // namespace
}  // namespace gossipc
