// Message-lifecycle tracer (DESIGN.md §9): ring semantics, JSONL export, and
// end-to-end path reconstruction — every decided instance's Phase 2b votes
// must be traceable from origination through gossip relays to the
// coordinator's delivery, and tracing must not perturb the simulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "core/experiment.hpp"
#include "trace/tracer.hpp"

namespace gossipc {
namespace {

using trace::Stage;
using trace::Tracer;

TEST(TracerTest, ZeroCapacityThrows) {
    EXPECT_THROW(Tracer(0), std::invalid_argument);
}

TEST(TracerTest, StageNamesAreStable) {
    EXPECT_STREQ(trace::stage_name(Stage::Originate), "originate");
    EXPECT_STREQ(trace::stage_name(Stage::DuplicateDrop), "duplicate_drop");
    EXPECT_STREQ(trace::stage_name(Stage::AggregateBuilt), "aggregate_built");
    EXPECT_STREQ(trace::stage_name(Stage::Decide), "decide");
}

TEST(TracerTest, RingKeepsNewestAndCountsEvictions) {
    Tracer t(4);
    for (InstanceId i = 0; i < 6; ++i) {
        t.record_decide(SimTime::millis(i), /*node=*/0, i);
    }
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.evicted(), 2u);
    const auto events = t.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest first; instances 0 and 1 were overwritten.
    EXPECT_EQ(events.front().instance, 2);
    EXPECT_EQ(events.back().instance, 5);
}

TEST(TracerTest, RecordCapturesMessageAndProbeOutput) {
    Tracer t(8);
    t.set_payload_probe([](const MessageBody&) {
        trace::PayloadInfo info;
        info.type = 4;
        info.type_name = "Phase2b";
        info.instance = 9;
        return info;
    });
    GossipAppMessage msg;
    msg.id = 12345;
    msg.origin = 2;
    msg.hops = 3;
    msg.payload = nullptr;  // probe only runs when a payload exists
    t.record(SimTime::millis(5), Stage::Forward, 2, 6, msg);
    const auto events = t.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].stage, Stage::Forward);
    EXPECT_EQ(events[0].node, 2);
    EXPECT_EQ(events[0].peer, 6);
    EXPECT_EQ(events[0].msg, 12345u);
    EXPECT_EQ(events[0].hops, 3u);
    EXPECT_EQ(events[0].instance, -1);  // no payload => probe not applied
}

TEST(TracerTest, ExportsJsonlOldestFirst) {
    Tracer t(8);
    t.record_decide(SimTime::millis(1), 3, 7);
    std::ostringstream os;
    t.export_jsonl(os);
    EXPECT_EQ(os.str(),
              "{\"t_ns\":1000000,\"stage\":\"decide\",\"node\":3,\"instance\":7,"
              "\"group\":0}\n");
}

TEST(TracerTest, ExportStampsGroupOnDecideAndPayloadStages) {
    Tracer t(8);
    // A sharded decide carries its consensus group for per-shard joins.
    t.record_decide(SimTime::millis(2), 1, 4, /*group=*/3);
    const auto events = t.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].group, 3);
    std::ostringstream os;
    t.export_jsonl(os);
    EXPECT_EQ(os.str(),
              "{\"t_ns\":2000000,\"stage\":\"decide\",\"node\":1,\"instance\":4,"
              "\"group\":3}\n");
}

TEST(TracerTest, ExportOmitsGroupWhenProbeLeavesItUnset) {
    // Payload stages without a probed group (e.g. a cross-group batch) keep
    // group = -1 and the JSONL line omits the key entirely.
    Tracer t(8);
    GossipAppMessage msg;
    msg.id = 77;
    msg.origin = 2;
    msg.hops = 0;
    msg.payload = nullptr;
    t.record(SimTime::millis(1), Stage::Forward, 2, 5, msg);
    std::ostringstream os;
    t.export_jsonl(os);
    EXPECT_EQ(os.str().find("\"group\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: traced experiment runs.

ExperimentConfig traced_config(Setup setup) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = 7;
    cfg.total_rate = 26.0;
    cfg.num_clients = 7;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(1);
    cfg.trace = true;
    cfg.trace_capacity = 1 << 20;  // large enough that nothing is evicted
    return cfg;
}

bool is_phase2b(const trace::Event& e) {
    return e.type_name != nullptr && std::strcmp(e.type_name, "Phase2b") == 0;
}

TEST(TracedRunTest, EveryDecidedInstanceHasReconstructiblePhase2bPath) {
    Deployment dep(traced_config(Setup::Gossip));
    dep.run();
    ASSERT_NE(dep.tracer(), nullptr);
    EXPECT_EQ(dep.tracer()->evicted(), 0u);
    const auto events = dep.tracer()->events();

    // Instances the coordinator decided.
    std::set<InstanceId> decided;
    for (const auto& e : events) {
        if (e.stage == Stage::Decide && e.node == 0) decided.insert(e.instance);
    }
    ASSERT_FALSE(decided.empty());

    // Index the Phase 2b events by message id.
    std::map<GossipMsgId, std::vector<trace::Event>> by_msg;
    for (const auto& e : events) {
        if (e.msg != 0 && is_phase2b(e)) by_msg[e.msg].push_back(e);
    }

    const int quorum = 7 / 2 + 1;
    for (const InstanceId instance : decided) {
        // Acceptors whose Phase 2b vote reached the coordinator, each along a
        // fully recorded path: Originate at the acceptor, then a Forward edge
        // matching every Receive, ending in a Deliver at node 0.
        std::set<ProcessId> voters_at_coordinator;
        for (const auto& [msg_id, evs] : by_msg) {
            if (evs.front().instance != instance) continue;
            ASSERT_EQ(evs.front().stage, Stage::Originate) << "msg " << msg_id;
            EXPECT_EQ(evs.front().hops, 0u);
            const ProcessId acceptor = evs.front().node;
            bool at_coordinator = acceptor == 0;
            for (std::size_t i = 0; i < evs.size(); ++i) {
                const auto& e = evs[i];
                if (e.stage == Stage::Receive) {
                    EXPECT_GE(e.hops, 1u);
                    // The matching relay: an earlier Forward of this message
                    // from the sending peer to this node.
                    const bool relayed =
                        std::any_of(evs.begin(), evs.begin() + static_cast<long>(i),
                                    [&](const trace::Event& f) {
                                        return f.stage == Stage::Forward &&
                                               f.node == e.peer && f.peer == e.node;
                                    });
                    EXPECT_TRUE(relayed)
                        << "receive without a recorded forward, msg " << msg_id;
                }
                if (e.stage == Stage::Deliver && e.node == 0) at_coordinator = true;
            }
            if (at_coordinator) voters_at_coordinator.insert(acceptor);
        }
        EXPECT_GE(static_cast<int>(voters_at_coordinator.size()), quorum)
            << "instance " << instance << " decided without a traced quorum";
    }
}

TEST(TracedRunTest, SemanticRunRecordsFilterAndAggregationStages) {
    Deployment dep(traced_config(Setup::SemanticGossip));
    const ExperimentResult result = dep.run();
    ASSERT_NE(dep.tracer(), nullptr);
    ASSERT_EQ(dep.tracer()->evicted(), 0u);

    std::map<Stage, std::uint64_t> counts;
    for (const auto& e : dep.tracer()->events()) ++counts[e.stage];
    EXPECT_GT(counts[Stage::FilterDrop], 0u);
    EXPECT_GT(counts[Stage::Aggregate], 0u);
    EXPECT_GT(counts[Stage::AggregateBuilt], 0u);
    EXPECT_GT(counts[Stage::Disaggregate], 0u);

    // The tracer records one Aggregate event per input absorbed into an
    // aggregate, including the group's first member (whose id the aggregate
    // replaces); the hook counter only counts the extras beyond the first.
    EXPECT_EQ(counts[Stage::Aggregate],
              result.semantic.messages_merged + result.semantic.aggregates_built);
    EXPECT_EQ(counts[Stage::AggregateBuilt], result.semantic.aggregates_built);

    // Disaggregated copies inherit the aggregate's traversal depth.
    for (const auto& e : dep.tracer()->events()) {
        if (e.stage == Stage::Disaggregate) {
            EXPECT_GE(e.hops, 1u);
        }
    }
}

TEST(TracedRunTest, TracingDoesNotPerturbTheSimulation) {
    ExperimentConfig cfg = traced_config(Setup::SemanticGossip);
    cfg.trace = false;
    const ExperimentResult plain = run_experiment(cfg);
    cfg.trace = true;
    const ExperimentResult traced = run_experiment(cfg);

    EXPECT_EQ(plain.workload.submitted, traced.workload.submitted);
    EXPECT_EQ(plain.workload.completed, traced.workload.completed);
    EXPECT_EQ(plain.messages.net_arrivals, traced.messages.net_arrivals);
    EXPECT_EQ(plain.messages.net_sent, traced.messages.net_sent);
    EXPECT_EQ(plain.messages.gossip_duplicates, traced.messages.gossip_duplicates);
    EXPECT_EQ(plain.semantic.messages_merged, traced.semantic.messages_merged);
    EXPECT_DOUBLE_EQ(plain.workload.throughput, traced.workload.throughput);
}

TEST(TracedRunTest, TracerAbsentByDefault) {
    ExperimentConfig cfg = traced_config(Setup::Gossip);
    cfg.trace = false;
    Deployment dep(cfg);
    EXPECT_EQ(dep.tracer(), nullptr);
}

}  // namespace
}  // namespace gossipc
