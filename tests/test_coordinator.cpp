// Unit tests: coordinator Phase 1, value proposal pipeline, re-proposal of
// reported values, Decision broadcast, and retransmission timers.
#include <gtest/gtest.h>

#include "paxos/coordinator.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

using testutil::FakeTransport;
using testutil::make_value;

struct CoordFixture {
    Simulator sim;
    FakeTransport transport;
    PaxosConfig config;
    Learner learner;
    Coordinator coordinator;
    CpuContext ctx{SimTime::zero()};

    explicit CoordFixture(int n = 3, bool timeouts = false,
                          const std::function<void(PaxosConfig&)>& tweak = {})
        : transport(sim, 0),
          config(make_config(n, timeouts, tweak)),
          learner(config.quorum()),
          coordinator(config, transport, learner) {
        learner.set_decided_listener(
            [this](InstanceId i, const Value& v, bool via_quorum, CpuContext& c) {
                coordinator.on_decided(i, v, via_quorum, c);
            });
    }

    static PaxosConfig make_config(int n, bool timeouts,
                                   const std::function<void(PaxosConfig&)>& tweak = {}) {
        PaxosConfig c;
        c.n = n;
        c.id = 0;
        c.coordinator = 0;
        c.timeouts_enabled = timeouts;
        if (tweak) tweak(c);
        return c;
    }

    void promise(ProcessId from, std::vector<AcceptedEntry> accepted = {}) {
        coordinator.on_phase1b(
            Phase1bMsg{from, coordinator.round(), 1, std::move(accepted)}, ctx);
    }
};

TEST(CoordinatorTest, StartsPhase1WithOwnedRound) {
    CoordFixture f;
    f.coordinator.start(f.ctx);
    const auto p1a = f.transport.sent_of(PaxosMsgType::Phase1a);
    ASSERT_EQ(p1a.size(), 1u);
    const auto& msg = static_cast<const Phase1aMsg&>(*p1a[0]);
    EXPECT_EQ(msg.round(), 1);  // round 1 is owned by process 0
    EXPECT_EQ(f.config.round_owner(msg.round()), 0);
    EXPECT_FALSE(f.coordinator.phase1_complete());
}

TEST(CoordinatorTest, Phase1CompletesAtQuorum) {
    CoordFixture f(5);  // quorum 3
    f.coordinator.start(f.ctx);
    f.promise(0);
    f.promise(1);
    EXPECT_FALSE(f.coordinator.phase1_complete());
    f.promise(2);
    EXPECT_TRUE(f.coordinator.phase1_complete());
}

TEST(CoordinatorTest, DuplicatePromisesDontCount) {
    CoordFixture f(5);
    f.coordinator.start(f.ctx);
    f.promise(1);
    f.promise(1);
    f.promise(1);
    EXPECT_FALSE(f.coordinator.phase1_complete());
}

TEST(CoordinatorTest, ValuesQueueUntilPhase1Completes) {
    CoordFixture f;
    f.coordinator.start(f.ctx);
    f.coordinator.on_client_value(make_value(0, 1), f.ctx);
    EXPECT_TRUE(f.transport.sent_of(PaxosMsgType::Phase2a).empty());
    EXPECT_EQ(f.coordinator.pending_values(), 1u);
    f.promise(0);
    f.promise(1);
    const auto p2a = f.transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 1u);
    EXPECT_EQ(static_cast<const Phase2aMsg&>(*p2a[0]).instance(), 1);
}

TEST(CoordinatorTest, PipelinesOneInstancePerValue) {
    CoordFixture f;
    f.coordinator.start(f.ctx);
    f.promise(0);
    f.promise(1);
    for (int s = 1; s <= 4; ++s) f.coordinator.on_client_value(make_value(0, s), f.ctx);
    const auto p2a = f.transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 4u);
    for (int s = 1; s <= 4; ++s) {
        EXPECT_EQ(static_cast<const Phase2aMsg&>(*p2a[static_cast<std::size_t>(s - 1)]).instance(), s);
    }
}

TEST(CoordinatorTest, DuplicateClientValuesIgnored) {
    CoordFixture f;
    f.coordinator.start(f.ctx);
    f.promise(0);
    f.promise(1);
    f.coordinator.on_client_value(make_value(0, 1), f.ctx);
    f.coordinator.on_client_value(make_value(0, 1), f.ctx);
    EXPECT_EQ(f.transport.sent_of(PaxosMsgType::Phase2a).size(), 1u);
    EXPECT_EQ(f.coordinator.counters().duplicate_values, 1u);
}

TEST(CoordinatorTest, ReproposesReportedValuesWithHighestVround) {
    CoordFixture f(5);
    f.coordinator.start(f.ctx);
    const Value v_low = make_value(1, 1);
    const Value v_high = make_value(2, 2);
    f.promise(0);
    f.promise(1, {AcceptedEntry{3, 1, v_low}});
    f.promise(2, {AcceptedEntry{3, 2, v_high}});  // higher vround wins
    const auto p2a = f.transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 1u);
    const auto& m = static_cast<const Phase2aMsg&>(*p2a[0]);
    EXPECT_EQ(m.instance(), 3);
    EXPECT_EQ(m.value(), v_high);
    EXPECT_EQ(f.coordinator.counters().reproposals, 1u);
    // New client values hole-fill the evidence-free instances below the
    // re-proposed one (the classic multi-Paxos no-op fill with a real value
    // standing in for the no-op) instead of stranding the frontier behind
    // instances nobody will ever propose into.
    f.coordinator.on_client_value(make_value(0, 9), f.ctx);
    const auto p2a2 = f.transport.sent_of(PaxosMsgType::Phase2a);
    EXPECT_EQ(static_cast<const Phase2aMsg&>(*p2a2.back()).instance(), 1);
    f.coordinator.on_client_value(make_value(0, 10), f.ctx);
    const auto p2a3 = f.transport.sent_of(PaxosMsgType::Phase2a);
    EXPECT_EQ(static_cast<const Phase2aMsg&>(*p2a3.back()).instance(), 2);
}

TEST(CoordinatorTest, BroadcastsDecisionOnQuorumLearn) {
    CoordFixture f;
    f.coordinator.start(f.ctx);
    f.promise(0);
    f.promise(1);
    const Value v = make_value(0, 1);
    f.coordinator.on_client_value(v, f.ctx);
    f.learner.on_phase2a(Phase2aMsg{0, 1, 1, v}, f.ctx);
    f.learner.on_phase2b(Phase2bMsg{0, 1, 1, v.id, v.digest()}, f.ctx);
    f.learner.on_phase2b(Phase2bMsg{1, 1, 1, v.id, v.digest()}, f.ctx);
    const auto decisions = f.transport.sent_of(PaxosMsgType::Decision);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(static_cast<const DecisionMsg&>(*decisions[0]).instance(), 1);
    EXPECT_EQ(f.coordinator.undecided_proposals(), 0u);
}

TEST(CoordinatorTest, NoDecisionBroadcastWhenLearnedFromDecision) {
    CoordFixture f;
    f.coordinator.start(f.ctx);
    f.promise(0);
    f.promise(1);
    const Value v = make_value(0, 1);
    f.learner.on_phase2a(Phase2aMsg{0, 1, 1, v}, f.ctx);
    f.learner.on_decision(DecisionMsg{1, 1, v.id, v.digest()}, f.ctx);
    EXPECT_TRUE(f.transport.sent_of(PaxosMsgType::Decision).empty());
}

TEST(CoordinatorTest, RetransmitsUndecidedProposals) {
    CoordFixture f(3, /*timeouts=*/true);
    f.coordinator.start(f.ctx);
    f.promise(0);
    f.promise(1);
    f.coordinator.on_client_value(make_value(0, 1), f.ctx);
    EXPECT_EQ(f.transport.sent_of(PaxosMsgType::Phase2a).size(), 1u);
    f.sim.run_until(SimTime::seconds(3));
    const auto p2a = f.transport.sent_of(PaxosMsgType::Phase2a);
    EXPECT_GT(p2a.size(), 1u);
    EXPECT_GT(f.coordinator.counters().retransmissions, 0u);
    // Retransmissions carry increasing attempts (fresh gossip ids).
    EXPECT_GT(static_cast<const Phase2aMsg&>(*p2a.back()).attempt(), 0);
}

TEST(CoordinatorTest, RetriesPhase1WithHigherRound) {
    CoordFixture f(3, /*timeouts=*/true);
    f.coordinator.start(f.ctx);
    const Round first = f.coordinator.round();
    f.sim.run_until(SimTime::seconds(5));  // no promises arrive
    EXPECT_GT(f.coordinator.round(), first);
    EXPECT_EQ(f.config.round_owner(f.coordinator.round()), 0);
}

TEST(CoordinatorTest, StalePhase1bIgnored) {
    CoordFixture f;
    f.coordinator.start(f.ctx);
    f.coordinator.on_phase1b(Phase1bMsg{1, 999, 1, {}}, f.ctx);  // wrong round
    EXPECT_FALSE(f.coordinator.phase1_complete());
}

// --- Value batching (DESIGN.md §14) ---

struct BatchFixture : CoordFixture {
    explicit BatchFixture(std::uint32_t batch_size, SimTime delay = SimTime::millis(5),
                          std::size_t cap = 1 << 16)
        : CoordFixture(3, /*timeouts=*/false, [&](PaxosConfig& c) {
              c.batch_size = batch_size;
              c.batch_delay = delay;
              c.pending_cap = cap;
          }) {}

    void complete_phase1() {
        coordinator.start(ctx);
        promise(0);
        promise(1);
        ASSERT_TRUE(coordinator.phase1_complete());
    }
};

TEST(CoordinatorBatching, FullBatchFlushesAsOneCompositeProposal) {
    BatchFixture f(/*batch_size=*/4);
    f.complete_phase1();
    for (int s = 1; s <= 4; ++s) f.coordinator.on_client_value(make_value(0, s), f.ctx);
    const auto p2a = f.transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 1u);
    const Value& v = static_cast<const Phase2aMsg&>(*p2a[0]).value();
    ASSERT_TRUE(v.is_batch());
    ASSERT_EQ(v.batch.size(), 4u);
    for (int s = 1; s <= 4; ++s) {  // submission order preserved
        EXPECT_EQ(v.batch[static_cast<std::size_t>(s - 1)].id,
                  (ValueId{0, s}));
    }
    EXPECT_LT(v.id.client, 0);  // synthesized identity, disjoint from clients
    EXPECT_EQ(f.coordinator.counters().batches_proposed, 1u);
    EXPECT_EQ(f.coordinator.counters().batched_values, 4u);
}

TEST(CoordinatorBatching, PartialBatchFlushesOnTimer) {
    BatchFixture f(/*batch_size=*/8, SimTime::millis(5));
    f.complete_phase1();
    for (int s = 1; s <= 3; ++s) f.coordinator.on_client_value(make_value(0, s), f.ctx);
    EXPECT_TRUE(f.transport.sent_of(PaxosMsgType::Phase2a).empty());  // parked
    f.sim.run_until(SimTime::millis(10));
    const auto p2a = f.transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 1u);
    const Value& v = static_cast<const Phase2aMsg&>(*p2a[0]).value();
    ASSERT_TRUE(v.is_batch());
    EXPECT_EQ(v.batch.size(), 3u);
    EXPECT_EQ(f.coordinator.counters().timer_flushes, 1u);
}

TEST(CoordinatorBatching, LoneValueFlushesPlainWithoutCompositeFraming) {
    BatchFixture f(/*batch_size=*/8);
    f.complete_phase1();
    f.coordinator.on_client_value(make_value(0, 1), f.ctx);
    f.sim.run_until(SimTime::millis(10));
    const auto p2a = f.transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 1u);
    const Value& v = static_cast<const Phase2aMsg&>(*p2a[0]).value();
    EXPECT_FALSE(v.is_batch());  // batch-of-one carries no framing overhead
    EXPECT_EQ(v.id, (ValueId{0, 1}));
    EXPECT_EQ(f.coordinator.counters().batches_proposed, 0u);
}

TEST(CoordinatorBatching, BatchSizeOneKeepsLegacyPlainPath) {
    BatchFixture f(/*batch_size=*/1);
    f.complete_phase1();
    for (int s = 1; s <= 3; ++s) f.coordinator.on_client_value(make_value(0, s), f.ctx);
    const auto p2a = f.transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 3u);  // one instance per value, immediately
    for (const auto& m : p2a) {
        EXPECT_FALSE(static_cast<const Phase2aMsg&>(*m).value().is_batch());
    }
    EXPECT_EQ(f.coordinator.counters().timer_flushes, 0u);
}

TEST(CoordinatorBatching, PendingCapShedsWithoutPoisoningRetries) {
    BatchFixture f(/*batch_size=*/8, SimTime::millis(5), /*cap=*/2);
    f.coordinator.start(f.ctx);  // phase 1 NOT complete: values queue up
    for (int s = 1; s <= 5; ++s) f.coordinator.on_client_value(make_value(0, s), f.ctx);
    EXPECT_EQ(f.coordinator.pending_values(), 2u);
    EXPECT_EQ(f.coordinator.counters().values_shed, 3u);
    // Shed values were NOT marked seen: once load clears, the origin's
    // retransmission of a shed value must get through, not dedup away.
    f.promise(0);
    f.promise(1);  // flushes the 2 queued values
    f.coordinator.on_client_value(make_value(0, 3), f.ctx);  // retry of a shed value
    EXPECT_EQ(f.coordinator.counters().duplicate_values, 0u);
    EXPECT_EQ(f.coordinator.counters().values_shed, 3u);
    EXPECT_FALSE(f.transport.sent_of(PaxosMsgType::Phase2a).empty());
}

TEST(CoordinatorBatching, StepDownUnpacksInFlightAndUnflushedValues) {
    BatchFixture f(/*batch_size=*/3, SimTime::seconds(60));
    f.complete_phase1();
    // 3 values -> one in-flight composite; 2 more park behind the long timer.
    for (int s = 1; s <= 5; ++s) f.coordinator.on_client_value(make_value(0, s), f.ctx);
    ASSERT_EQ(f.transport.sent_of(PaxosMsgType::Phase2a).size(), 1u);
    ASSERT_EQ(f.coordinator.pending_values(), 2u);
    const auto orphaned = f.coordinator.step_down();
    // All 5 client values come back as plain orphans, none as a composite.
    ASSERT_EQ(orphaned.size(), 5u);
    for (const Value& v : orphaned) {
        EXPECT_FALSE(v.is_batch());
        EXPECT_GE(v.id.client, 0);
    }
}

TEST(CoordinatorBatching, DecidedCompositeDeduplicatesComponentRetries) {
    BatchFixture f(/*batch_size=*/2);
    f.complete_phase1();
    f.coordinator.on_client_value(make_value(0, 1), f.ctx);
    f.coordinator.on_client_value(make_value(1, 1), f.ctx);
    const auto p2a = f.transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 1u);
    const auto& msg = static_cast<const Phase2aMsg&>(*p2a[0]);
    const Value v = msg.value();
    ASSERT_TRUE(v.is_batch());
    f.learner.on_phase2a(msg, f.ctx);
    f.learner.on_phase2b(Phase2bMsg{0, msg.instance(), 1, v.id, v.digest()}, f.ctx);
    f.learner.on_phase2b(Phase2bMsg{1, msg.instance(), 1, v.id, v.digest()}, f.ctx);
    // The composite is decided: origin retransmissions of its components
    // must dedup, or they would be ordered a second time elsewhere.
    f.coordinator.on_client_value(make_value(0, 1), f.ctx);
    f.coordinator.on_client_value(make_value(1, 1), f.ctx);
    EXPECT_EQ(f.coordinator.counters().duplicate_values, 2u);
    EXPECT_EQ(f.transport.sent_of(PaxosMsgType::Phase2a).size(), 1u);
}

}  // namespace
}  // namespace gossipc
