// Unit tests: Paxos message wire sizes and unique-key properties.
#include <gtest/gtest.h>

#include <set>

#include "paxos/message.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

using testutil::make_value;

TEST(MessageTest, WireSizesReflectPayloads) {
    const Value v = make_value(0, 1, 1024);
    EXPECT_EQ(ClientValueMsg(0, v).wire_size(), 24u + 1024u);
    EXPECT_EQ(Phase1aMsg(0, 1, 1).wire_size(), 24u);
    EXPECT_EQ(Phase2aMsg(0, 1, 1, v).wire_size(), 32u + 1024u);
    // Phase 2b carries a digest, not the payload: small and constant.
    EXPECT_EQ(Phase2bMsg(0, 1, 1, v.id, v.digest()).wire_size(), 64u);
    EXPECT_EQ(DecisionMsg(0, 1, v.id, v.digest()).wire_size(), 64u);
    EXPECT_EQ(DecisionMsg(0, 1, v.id, v.digest(), v).wire_size(), 64u + 1024u);
    EXPECT_EQ(LearnRequestMsg(0, 1, 0).wire_size(), 32u);
}

TEST(MessageTest, AggregateSizeNearlyConstant) {
    // "An aggregated vote message has essentially the same size regardless
    // of the number of single vote messages it has replaced" (Section 3.2).
    const Value v = make_value(0, 1);
    const auto size_with = [&](int senders) {
        std::vector<ProcessId> s;
        for (int i = 0; i < senders; ++i) s.push_back(i);
        return Phase2bAggregateMsg(0, 1, 1, v.id, v.digest(), s, 0).wire_size();
    };
    const auto single = Phase2bMsg(0, 1, 1, v.id, v.digest()).wire_size();
    EXPECT_LT(size_with(10), 2u * single);
    EXPECT_LT(size_with(50), 10u * single);  // vs 50x for separate messages
}

TEST(MessageTest, Phase1bSizeGrowsWithAcceptedEntries) {
    const Value v = make_value(0, 1, 512);
    const Phase1bMsg empty(0, 1, 1, {});
    const Phase1bMsg loaded(0, 1, 1, {AcceptedEntry{1, 1, v}, AcceptedEntry{2, 1, v}});
    EXPECT_GT(loaded.wire_size(), empty.wire_size() + 2 * 512);
}

TEST(MessageTest, UniqueKeysDifferAcrossFields) {
    const Value v = make_value(0, 1);
    std::set<std::uint64_t> keys;
    keys.insert(Phase2bMsg(0, 1, 1, v.id, v.digest()).unique_key());
    keys.insert(Phase2bMsg(1, 1, 1, v.id, v.digest()).unique_key());  // sender
    keys.insert(Phase2bMsg(0, 2, 1, v.id, v.digest()).unique_key());  // instance
    keys.insert(Phase2bMsg(0, 1, 2, v.id, v.digest()).unique_key());  // round
    keys.insert(Phase2bMsg(0, 1, 1, v.id, v.digest(), 1).unique_key());  // attempt
    keys.insert(Phase2aMsg(0, 1, 1, v).unique_key());                 // type
    EXPECT_EQ(keys.size(), 6u);
}

TEST(MessageTest, RetransmissionsGetFreshKeys) {
    const Value v = make_value(0, 1);
    const Phase2aMsg a(0, 1, 1, v, 0);
    const Phase2aMsg b(0, 1, 1, v, 1);
    EXPECT_NE(a.unique_key(), b.unique_key());
    // Identical re-sends share the key (deduplicated by the seen cache).
    EXPECT_EQ(a.unique_key(), Phase2aMsg(0, 1, 1, v, 0).unique_key());
}

TEST(MessageTest, DescribeNamesType) {
    const Value v = make_value(0, 1);
    EXPECT_NE(Phase2bMsg(3, 1, 1, v.id, v.digest()).describe().find("Phase2b"),
              std::string::npos);
    EXPECT_NE(DecisionMsg(0, 1, v.id, v.digest()).describe().find("Decision"),
              std::string::npos);
}

TEST(MessageTest, KindIsPaxos) {
    const Value v = make_value(0, 1);
    EXPECT_EQ(Phase2bMsg(0, 1, 1, v.id, v.digest()).kind(), BodyKind::Paxos);
    EXPECT_EQ(ClientValueMsg(0, v).kind(), BodyKind::Paxos);
}

TEST(MessageTest, TypeNamesDistinct) {
    std::set<std::string> names;
    for (const auto t : {PaxosMsgType::ClientValue, PaxosMsgType::Phase1a, PaxosMsgType::Phase1b,
                         PaxosMsgType::Phase2a, PaxosMsgType::Phase2b,
                         PaxosMsgType::Phase2bAggregate, PaxosMsgType::Decision,
                         PaxosMsgType::LearnRequest}) {
        names.insert(paxos_msg_type_name(t));
    }
    EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace gossipc
