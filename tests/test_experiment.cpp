// Integration tests over full deployments: setup construction, agreement
// across setups, determinism, message-statistic structure, loss resilience,
// and the semantic techniques' measurable effect.
#include <gtest/gtest.h>

#include <map>

#include "core/semantic_gossip.hpp"

namespace gossipc {
namespace {

ExperimentConfig small_config(Setup setup, double rate = 50.0) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = 13;
    cfg.total_rate = rate;
    cfg.warmup = SimTime::seconds(0.5);
    cfg.measure = SimTime::seconds(2);
    cfg.drain = SimTime::seconds(2);
    return cfg;
}

TEST(ExperimentTest, RejectsTinyDeployments) {
    ExperimentConfig cfg;
    cfg.n = 2;
    EXPECT_THROW(Deployment{cfg}, std::invalid_argument);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
    const auto a = run_experiment(small_config(Setup::SemanticGossip));
    const auto b = run_experiment(small_config(Setup::SemanticGossip));
    EXPECT_EQ(a.workload.completed, b.workload.completed);
    EXPECT_EQ(a.messages.net_arrivals, b.messages.net_arrivals);
    EXPECT_DOUBLE_EQ(a.workload.latencies.mean(), b.workload.latencies.mean());
}

TEST(ExperimentTest, SeedChangesRun) {
    auto cfg = small_config(Setup::Gossip);
    const auto a = run_experiment(cfg);
    cfg.seed = 999;
    const auto b = run_experiment(cfg);
    EXPECT_NE(a.messages.net_arrivals, b.messages.net_arrivals);
}

TEST(ExperimentTest, SameOverlayAcrossGossipSetups) {
    // The paper enforces one overlay per system size across Gossip and
    // Semantic Gossip; the same overlay_seed must yield identical overlays.
    auto g = small_config(Setup::Gossip);
    auto s = small_config(Setup::SemanticGossip);
    Deployment dg(g), ds(s);
    ASSERT_NE(dg.overlay(), nullptr);
    ASSERT_NE(ds.overlay(), nullptr);
    EXPECT_EQ(dg.overlay()->edges(), ds.overlay()->edges());
}

TEST(ExperimentTest, ExplicitOverlayHonoured) {
    auto cfg = small_config(Setup::Gossip);
    cfg.overlay = make_connected_overlay(cfg.n, 777);
    Deployment d(cfg);
    EXPECT_EQ(d.overlay()->edges(), cfg.overlay->edges());
    // Mismatched size is rejected.
    cfg.overlay = make_connected_overlay(7, 1);
    EXPECT_THROW(Deployment{cfg}, std::invalid_argument);
}

TEST(ExperimentTest, AllProcessesAgreeOnDecidedValues) {
    for (const auto setup : {Setup::Baseline, Setup::Gossip, Setup::SemanticGossip}) {
        auto cfg = small_config(setup, 26.0);
        Deployment d(cfg);
        // Record per-process logs.
        std::vector<std::map<InstanceId, ValueId>> logs(static_cast<std::size_t>(cfg.n));
        // The workload already installed listeners on client-hosting
        // processes; chain through learner state after the run instead.
        d.run();
        for (ProcessId id = 0; id < cfg.n; ++id) {
            auto& learner = d.process(id).learner();
            for (InstanceId i = 1; i < learner.frontier(); ++i) {
                const auto v = learner.decided_value(i);
                ASSERT_TRUE(v.has_value());
                logs[static_cast<std::size_t>(id)][i] = v->id;
            }
        }
        for (std::size_t a = 0; a < logs.size(); ++a) {
            for (const auto& [inst, vid] : logs[a]) {
                for (std::size_t b = 0; b < logs.size(); ++b) {
                    const auto it = logs[b].find(inst);
                    if (it != logs[b].end()) {
                        EXPECT_EQ(vid, it->second)
                            << setup_name(setup) << " instance " << inst;
                    }
                }
            }
        }
    }
}

TEST(ExperimentTest, GossipHasHigherRedundancyThanBaseline) {
    const auto base = run_experiment(small_config(Setup::Baseline));
    const auto gossip = run_experiment(small_config(Setup::Gossip));
    // Section 4.3: processes receive multiples of what Baseline's
    // coordinator receives; duplicates are a large share.
    EXPECT_GT(gossip.messages.net_arrivals, 2 * base.messages.net_arrivals);
    EXPECT_GT(gossip.messages.duplicate_fraction(), 0.3);
    EXPECT_EQ(base.messages.gossip_messages_received, 0u);  // no gossip layer
}

TEST(ExperimentTest, SemanticGossipReducesMessages) {
    const auto gossip = run_experiment(small_config(Setup::Gossip, 100.0));
    const auto semantic = run_experiment(small_config(Setup::SemanticGossip, 100.0));
    EXPECT_LT(semantic.messages.net_arrivals, gossip.messages.net_arrivals);
    EXPECT_LT(semantic.messages.gossip_delivered, gossip.messages.gossip_delivered);
    EXPECT_GT(semantic.semantic.filtered_phase2b, 0u);
    // Both setups order everything at this load.
    EXPECT_EQ(gossip.workload.not_ordered, 0u);
    EXPECT_EQ(semantic.workload.not_ordered, 0u);
}

TEST(ExperimentTest, FilteringAloneAndAggregationAloneWork) {
    auto filter_only = small_config(Setup::SemanticGossip, 100.0);
    filter_only.semantic = {.filtering = true, .aggregation = false};
    const auto f = run_experiment(filter_only);
    EXPECT_GT(f.semantic.filtered_phase2b, 0u);
    EXPECT_EQ(f.semantic.aggregates_built, 0u);

    auto agg_only = small_config(Setup::SemanticGossip, 100.0);
    agg_only.semantic = {.filtering = false, .aggregation = true};
    const auto a = run_experiment(agg_only);
    EXPECT_EQ(a.semantic.filtered_phase2b, 0u);
    EXPECT_GT(a.semantic.aggregates_built, 0u);
    EXPECT_EQ(a.workload.not_ordered, 0u);
}

TEST(ExperimentTest, ResilientToModerateLossWithGossip) {
    // Section 4.5: below 10% loss every submitted value is ordered even
    // with timeout-triggered procedures disabled. Needs an overlay degree
    // comparable to the paper's (n=53 gives ~5.7).
    for (const auto setup : {Setup::Gossip, Setup::SemanticGossip}) {
        auto cfg = small_config(setup, 26.0);
        cfg.n = 53;
        cfg.loss_rate = 0.05;
        cfg.timeouts_enabled = false;
        cfg.drain = SimTime::seconds(3);
        const auto r = run_experiment(cfg);
        EXPECT_EQ(r.workload.not_ordered, 0u) << setup_name(setup);
        EXPECT_GT(r.messages.net_loss_drops, 0u);
    }
}

TEST(ExperimentTest, HeavyLossBreaksUnrepairedConsensus) {
    auto cfg = small_config(Setup::Gossip, 100.0);
    cfg.loss_rate = 0.6;  // far beyond gossip's redundancy
    cfg.timeouts_enabled = false;
    const auto r = run_experiment(cfg);
    EXPECT_GT(r.workload.not_ordered, 0u);
}

TEST(ExperimentTest, TimeoutsRepairHeavyLoss) {
    auto cfg = small_config(Setup::Gossip, 26.0);
    cfg.loss_rate = 0.3;
    cfg.timeouts_enabled = true;
    cfg.drain = SimTime::seconds(10);
    const auto r = run_experiment(cfg);
    // Retransmissions and LearnRequests recover everything eventually.
    EXPECT_EQ(r.workload.not_ordered, 0u);
}

TEST(ExperimentTest, BaselineHasNoOverlayStats) {
    const auto base = run_experiment(small_config(Setup::Baseline));
    EXPECT_EQ(base.median_rtt, SimTime::zero());
    const auto gossip = run_experiment(small_config(Setup::Gossip));
    EXPECT_GT(gossip.median_rtt, SimTime::zero());
    EXPECT_TRUE(gossip.overlay.connected);
}

TEST(ExperimentTest, CoordinatorDecidesEverythingSubmitted) {
    const auto r = run_experiment(small_config(Setup::SemanticGossip, 52.0));
    EXPECT_GE(r.decisions_at_coordinator, r.workload.completed / 13);
    EXPECT_GT(r.decisions_at_coordinator, 0u);
}

}  // namespace
}  // namespace gossipc
