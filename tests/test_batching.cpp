// Unit tests for the gossip layer's network-level batching mode (the
// aggregation-vs-batching ablation, paper Section 3.2).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gossip/gossip_node.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace gossipc {
namespace {

class Payload final : public MessageBody {
public:
    std::uint32_t wire_size() const override { return 64; }
    std::string describe() const override { return "payload"; }
};

GossipAppMessage make_msg(GossipMsgId id) {
    GossipAppMessage m;
    m.id = id;
    m.origin = 0;
    m.payload = std::make_shared<Payload>();
    return m;
}

struct BatchFixture {
    Simulator sim;
    Network net;
    PassThroughHooks hooks;
    GossipNode sender;
    GossipNode receiver;
    std::vector<std::pair<GossipMsgId, SimTime>> delivered;

    explicit BatchFixture(GossipNode::Params gp, Network::Params np = [] {
        Network::Params p;
        p.jitter_frac = 0.0;
        return p;
    }())
        : net(sim, LatencyModel::aws(), 2, np),
          sender((net.allow_link(0, 1), net.node(0)), {1}, gp, hooks),
          receiver(net.node(1), {0}, gp, hooks) {
        receiver.set_deliver([this](const GossipAppMessage& m, CpuContext& ctx) {
            delivered.emplace_back(m.id, ctx.now());
        });
    }
};

TEST(BatchingTest, DisabledByDefaultSendsImmediately) {
    GossipNode::Params gp;  // batch_size = 1
    BatchFixture f(gp);
    f.sender.post_broadcast(make_msg(1));
    f.sim.run_until_idle();
    ASSERT_EQ(f.delivered.size(), 1u);
    // Arrives after roughly one propagation delay, not a batching delay.
    EXPECT_LT(f.delivered[0].second, f.net.propagation_delay(0, 1) + SimTime::millis(1));
}

TEST(BatchingTest, SingleMessageWaitsForDelay) {
    GossipNode::Params gp;
    gp.batch_size = 8;
    gp.batch_delay = SimTime::millis(50);
    BatchFixture f(gp);
    f.sender.post_broadcast(make_msg(1));
    f.sim.run_until_idle();
    ASSERT_EQ(f.delivered.size(), 1u);
    // The lone message was held for the full batch delay before sending.
    EXPECT_GE(f.delivered[0].second, SimTime::millis(50) + f.net.propagation_delay(0, 1));
}

TEST(BatchingTest, FullBatchFlushesEarly) {
    GossipNode::Params gp;
    gp.batch_size = 4;
    gp.batch_delay = SimTime::millis(500);
    BatchFixture f(gp);
    for (GossipMsgId id = 1; id <= 4; ++id) f.sender.post_broadcast(make_msg(id));
    f.sim.run_until_idle();
    ASSERT_EQ(f.delivered.size(), 4u);
    // All four went out well before the 500ms hold would have expired.
    for (const auto& [id, at] : f.delivered) {
        EXPECT_LT(at, SimTime::millis(100));
    }
}

TEST(BatchingTest, PartialBatchEventuallyFlushes) {
    GossipNode::Params gp;
    gp.batch_size = 10;
    gp.batch_delay = SimTime::millis(30);
    BatchFixture f(gp);
    for (GossipMsgId id = 1; id <= 3; ++id) f.sender.post_broadcast(make_msg(id));
    f.sim.run_until(SimTime::seconds(1));
    EXPECT_EQ(f.delivered.size(), 3u);  // delay-triggered flush, no message lost
}

TEST(BatchingTest, OrderPreservedWithinBatches) {
    GossipNode::Params gp;
    gp.batch_size = 5;
    gp.batch_delay = SimTime::millis(20);
    BatchFixture f(gp);
    for (GossipMsgId id = 1; id <= 12; ++id) f.sender.post_broadcast(make_msg(id));
    f.sim.run_until(SimTime::seconds(1));
    ASSERT_EQ(f.delivered.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_EQ(f.delivered[i].first, i + 1);
    }
}

}  // namespace
}  // namespace gossipc
