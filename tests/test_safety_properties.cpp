// Property-based safety tests: across randomized environments (loss rates,
// overlays, seeds, setups), Paxos must never violate agreement (no two
// processes decide different values in the same instance) or integrity
// (only submitted values are decided, each instance decided once), and
// delivery must be gap-free in instance order at every process.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/semantic_gossip.hpp"

namespace gossipc {
namespace {

struct Env {
    Setup setup;
    int n;
    double loss;
    bool timeouts;
    std::uint64_t seed;
};

class SafetySweep : public ::testing::TestWithParam<Env> {};

TEST_P(SafetySweep, AgreementIntegrityAndGapFreeDelivery) {
    const Env env = GetParam();
    ExperimentConfig cfg;
    cfg.setup = env.setup;
    cfg.n = env.n;
    cfg.total_rate = 52.0;
    cfg.loss_rate = env.loss;
    cfg.timeouts_enabled = env.timeouts;
    cfg.seed = env.seed;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1.5);
    cfg.drain = SimTime::seconds(1.5);

    Deployment d(cfg);

    // Track every delivery at every process, replacing the workload's
    // listeners after construction is too late (workload installed its own
    // on client hosts); instead reconstruct from learner logs afterwards and
    // additionally check the learner's own frontier invariant.
    const auto result = d.run();

    std::map<InstanceId, ValueId> reference;
    std::uint64_t decided_total = 0;
    for (ProcessId id = 0; id < cfg.n; ++id) {
        auto& learner = d.process(id).learner();
        // Gap-free: every instance below the frontier has a decided value.
        for (InstanceId i = 1; i < learner.frontier(); ++i) {
            const auto v = learner.decided_value(i);
            ASSERT_TRUE(v.has_value()) << "gap at process " << id << " instance " << i;
            // Integrity: the value must be a real client value.
            EXPECT_GE(v->id.client, 0);
            EXPECT_LT(v->id.client, 13);
            EXPECT_GE(v->id.seq, 0);
            // Agreement across processes.
            const auto [it, inserted] = reference.emplace(i, v->id);
            if (!inserted) {
                ASSERT_EQ(it->second, v->id)
                    << "divergent decision at instance " << i << " process " << id;
            }
            ++decided_total;
        }
        EXPECT_EQ(learner.delivered_count(),
                  static_cast<std::uint64_t>(learner.frontier() - 1));
    }
    // Each instance holds a distinct value (the coordinator deduplicates).
    std::set<ValueId> values;
    for (const auto& [inst, vid] : reference) {
        EXPECT_TRUE(values.insert(vid).second) << "value decided twice";
    }
    // Sanity: the run actually did something.
    EXPECT_GT(decided_total, 0u);
    (void)result;
}

std::vector<Env> sweep_envs() {
    std::vector<Env> envs;
    for (const Setup setup : {Setup::Baseline, Setup::Gossip, Setup::SemanticGossip}) {
        for (const std::uint64_t seed : {1ull, 7ull}) {
            envs.push_back(Env{setup, 13, 0.0, true, seed});
        }
    }
    // Lossy gossip environments, with and without repair.
    for (const double loss : {0.1, 0.3}) {
        for (const bool timeouts : {false, true}) {
            envs.push_back(Env{Setup::Gossip, 13, loss, timeouts, 11});
            envs.push_back(Env{Setup::SemanticGossip, 13, loss, timeouts, 13});
        }
    }
    return envs;
}

INSTANTIATE_TEST_SUITE_P(Environments, SafetySweep, ::testing::ValuesIn(sweep_envs()),
                         [](const ::testing::TestParamInfo<Env>& info) {
                             const Env& e = info.param;
                             std::string name = setup_name(e.setup);
                             name += "_n" + std::to_string(e.n);
                             name += "_loss" + std::to_string(static_cast<int>(e.loss * 100));
                             name += e.timeouts ? "_repair" : "_norepair";
                             name += "_s" + std::to_string(e.seed);
                             return name;
                         });

// The semantic techniques change only how messages flow, not what consensus
// achieves: with the same overlay and workload, Gossip and Semantic Gossip
// order the same set of client values. (The instance each value lands in may
// differ — filtering/aggregation legitimately reorders ClientValue arrivals
// at the coordinator.)
TEST(SemanticEquivalence, SameValueSetOrderedAsClassicGossip) {
    std::set<ValueId> ordered[2];
    int idx = 0;
    using ::gossipc::Setup;  // disambiguate from testing::Test::Setup
    for (const auto setup : {Setup::Gossip, Setup::SemanticGossip}) {
        ExperimentConfig cfg;
        cfg.setup = setup;
        cfg.n = 13;
        cfg.total_rate = 52.0;
        cfg.warmup = SimTime::seconds(0.25);
        cfg.measure = SimTime::seconds(1.5);
        cfg.drain = SimTime::seconds(2);
        Deployment d(cfg);
        const auto r = d.run();
        EXPECT_EQ(r.workload.not_ordered, 0u) << setup_name(setup);
        auto& learner = d.process(0).learner();
        for (InstanceId i = 1; i < learner.frontier(); ++i) {
            ordered[idx].insert(learner.decided_value(i)->id);
        }
        ++idx;
    }
    ASSERT_FALSE(ordered[0].empty());
    // Identical submission schedules: both runs decide the same values, up
    // to a small in-flight tail at the simulation cutoff.
    std::vector<ValueId> only_in_one;
    std::set_symmetric_difference(ordered[0].begin(), ordered[0].end(), ordered[1].begin(),
                                  ordered[1].end(), std::back_inserter(only_in_one));
    EXPECT_LE(only_in_one.size(), 4u);
}

}  // namespace
}  // namespace gossipc
