// Unit tests: event queue ordering and simulator semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace gossipc {
namespace {

TEST(EventQueueTest, OrdersByTime) {
    EventQueue q;
    std::vector<int> order;
    q.push(SimTime::millis(3), [&] { order.push_back(3); });
    q.push(SimTime::millis(1), [&] { order.push_back(1); });
    q.push(SimTime::millis(2), [&] { order.push_back(2); });
    while (!q.empty()) q.pop().execute();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        q.push(SimTime::millis(5), [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.pop().execute();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeAndErrors) {
    EventQueue q;
    EXPECT_THROW(q.next_time(), std::logic_error);
    EXPECT_THROW(q.pop(), std::logic_error);
    q.push(SimTime::millis(7), [] {});
    EXPECT_EQ(q.next_time(), SimTime::millis(7));
    EXPECT_EQ(q.size(), 1u);
    q.clear();
    EXPECT_TRUE(q.empty());
}

namespace {
struct CountingTarget final : DeliveryTarget {
    int delivered = 0;
    void deliver_event(NetMessage) override { ++delivered; }
};
}  // namespace

TEST(EventQueueTest, DeliveryLaneInterleavesWithCallbacks) {
    EventQueue q;
    CountingTarget target;
    std::vector<int> order;
    q.push(SimTime::millis(2), [&] { order.push_back(2); });
    q.push_delivery(SimTime::millis(1), target, NetMessage{});
    while (!q.empty()) q.pop().execute();
    EXPECT_EQ(target.delivered, 1);
    EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
    Simulator sim;
    SimTime seen = SimTime::zero();
    sim.schedule_after(SimTime::millis(10), [&] { seen = sim.now(); });
    sim.run_until(SimTime::millis(20));
    EXPECT_EQ(seen, SimTime::millis(10));
    EXPECT_EQ(sim.now(), SimTime::millis(20));  // clock advances to target
}

TEST(SimulatorTest, PastEventsClampToNow) {
    Simulator sim;
    sim.run_until(SimTime::millis(5));
    bool ran = false;
    sim.schedule_at(SimTime::millis(1), [&] {
        ran = true;
        EXPECT_EQ(sim.now(), SimTime::millis(5));
    });
    sim.run_until(SimTime::millis(5));
    EXPECT_TRUE(ran);
}

TEST(SimulatorTest, NestedScheduling) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_after(SimTime::millis(1), [&] {
        order.push_back(1);
        sim.schedule_after(SimTime::millis(1), [&] { order.push_back(2); });
    });
    sim.run_until(SimTime::millis(10));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilIdleReportsDrain) {
    Simulator sim;
    int count = 0;
    sim.schedule_after(SimTime::millis(1), [&] { ++count; });
    sim.schedule_after(SimTime::millis(2), [&] { ++count; });
    EXPECT_TRUE(sim.run_until_idle());
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(SimulatorTest, StopHaltsExecution) {
    Simulator sim;
    int count = 0;
    sim.schedule_after(SimTime::millis(1), [&] {
        ++count;
        sim.stop();
    });
    sim.schedule_after(SimTime::millis(2), [&] { ++count; });
    sim.run_until(SimTime::millis(10));
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.stopped());
}

TEST(SimulatorTest, ResetClearsState) {
    Simulator sim;
    sim.schedule_after(SimTime::millis(1), [] {});
    sim.run_until(SimTime::millis(5));
    sim.stop();
    sim.reset();
    EXPECT_EQ(sim.now(), SimTime::zero());
    EXPECT_FALSE(sim.stopped());
    EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, TimerFiresOnce) {
    Simulator sim;
    int fired = 0;
    auto t = sim.schedule_timer(SimTime::millis(3), [&] { ++fired; });
    EXPECT_TRUE(t.pending());
    sim.run_until(SimTime::millis(10));
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(t.pending());
}

TEST(SimulatorTest, CancelledTimerDoesNotFire) {
    Simulator sim;
    int fired = 0;
    auto t = sim.schedule_timer(SimTime::millis(3), [&] { ++fired; });
    t.cancel();
    sim.run_until(SimTime::millis(10));
    EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, DeterministicEventCount) {
    auto run = [] {
        Simulator sim;
        std::uint64_t sum = 0;
        for (int i = 0; i < 100; ++i) {
            sim.schedule_after(SimTime::micros(i * 7 % 50), [&sum, i] { sum += std::uint64_t(i); });
        }
        sim.run_until_idle();
        return sum;
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace gossipc
