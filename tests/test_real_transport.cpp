// End-to-end tests of the real-socket runtime (DESIGN.md §10): an
// in-process loopback cluster — every node's ConnectionManager, RealTransport,
// and PaxosProcess live in one test process, share one Reactor, and talk
// over real TCP sockets on ephemeral localhost ports.
//
// This exercises the exact production stack (sockets, framing, codec,
// per-peer queues, gossip dissemination, semantic hooks) without spawning
// processes, so it can run inside ctest on any machine. The multi-process
// variant — separate gossipd daemons plus a SIGKILLed coordinator — lives in
// scripts/cluster_local.sh and runs as the CI real-cluster-smoke job.
//
// All timers run on the real monotonic clock; limits are generous (tens of
// seconds) while actual runs complete in tens of milliseconds.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gossip/hooks.hpp"
#include "overlay/random_overlay.hpp"
#include "paxos/process.hpp"
#include "runtime/conn_manager.hpp"
#include "runtime/real_transport.hpp"
#include "runtime/tcp.hpp"
#include "semantic/paxos_semantics.hpp"

namespace gossipc::runtime {
namespace {

struct Decision {
    InstanceId instance;
    ValueId value;

    friend bool operator==(const Decision& a, const Decision& b) {
        return a.instance == b.instance && a.value == b.value;
    }
};

/// One cluster member hosted inside the test process.
struct NodeHarness {
    std::unique_ptr<ConnectionManager> conns;
    PassThroughHooks pass_through;
    std::unique_ptr<PaxosSemantics> semantics;
    std::unique_ptr<RealTransport> transport;
    std::unique_ptr<PaxosProcess> proc;
    std::vector<ProcessId> linked;
    std::vector<Decision> decisions;
};

enum class Setup { Baseline, Gossip, Semantic };

class LoopbackCluster {
public:
    LoopbackCluster(int n, Setup setup, std::uint64_t overlay_seed = 42) : n_(n) {
        // Ephemeral ports: bind every listener on port 0 first, read the
        // ports back, then hand the complete address list to every manager.
        std::vector<int> listen_fds;
        std::vector<PeerAddress> cluster;
        for (int i = 0; i < n; ++i) {
            std::string err;
            const int fd = listen_tcp("127.0.0.1", 0, &err);
            EXPECT_GE(fd, 0) << err;
            listen_fds.push_back(fd);
            cluster.push_back(PeerAddress{"127.0.0.1", local_port(fd)});
        }

        const Graph overlay = make_connected_overlay(n, overlay_seed);
        for (int i = 0; i < n; ++i) {
            auto node = std::make_unique<NodeHarness>();
            node->conns = std::make_unique<ConnectionManager>(
                reactor_, i, cluster, listen_fds[static_cast<std::size_t>(i)],
                ConnectionManager::Params{});

            PaxosConfig pc;
            pc.n = n;
            pc.id = i;
            pc.coordinator = 0;
            pc.heartbeat_piggyback = setup != Setup::Semantic;

            GossipHooks* hooks = &node->pass_through;
            if (setup == Setup::Semantic) {
                node->semantics = std::make_unique<PaxosSemantics>(
                    i, pc.quorum(), PaxosSemantics::Options{});
                hooks = node->semantics.get();
            }

            RealTransport::Params tp;
            if (setup == Setup::Baseline) {
                tp.mode = RealTransport::Mode::Direct;
                for (ProcessId p = 0; p < n; ++p) {
                    if (p != i) node->linked.push_back(p);
                }
            } else {
                tp.mode = RealTransport::Mode::Gossip;
                tp.neighbors = overlay.neighbors(i);
                node->linked = tp.neighbors;
            }
            node->transport = std::make_unique<RealTransport>(reactor_, *node->conns,
                                                              std::move(tp), *hooks);
            node->proc = std::make_unique<PaxosProcess>(pc, *node->transport);
            NodeHarness* raw = node.get();
            node->proc->set_delivery_listener(
                [raw](InstanceId instance, const Value& value, CpuContext&) {
                    raw->decisions.push_back(Decision{instance, value.id});
                });
            nodes_.push_back(std::move(node));
        }
    }

    /// Waits for every overlay link's Hello handshake, then starts the stack.
    void start() {
        const bool mesh_up = reactor_.run_until([this] { return all_links_up(); },
                                                SimTime::seconds(10));
        ASSERT_TRUE(mesh_up) << "connection mesh did not come up";
        for (auto& node : nodes_) node->proc->post_start();
    }

    /// Submits `total` values round-robin across all nodes. Sequence numbers
    /// persist across calls so repeated waves never reuse a ValueId.
    void submit(int total) {
        for (int v = 0; v < total; ++v) {
            const int owner = v % n_;
            Value value;
            value.id = ValueId{owner, next_seq_[static_cast<std::size_t>(owner)]++};
            nodes_[static_cast<std::size_t>(owner)]->proc->post_submit(value);
        }
    }

    /// Runs until every node delivered `total` decisions.
    bool run_until_delivered(int total, SimTime limit = SimTime::seconds(60)) {
        return reactor_.run_until(
            [this, total] {
                for (const auto& node : nodes_) {
                    if (node->decisions.size() < static_cast<std::size_t>(total)) return false;
                }
                return true;
            },
            limit);
    }

    /// Every node's sequence is gap-free from instance 1 and identical to
    /// node 0's — the cluster-wide agreement check.
    void expect_agreement(int total) {
        const auto& reference = nodes_[0]->decisions;
        ASSERT_EQ(reference.size(), static_cast<std::size_t>(total));
        for (int i = 0; i < total; ++i) {
            EXPECT_EQ(reference[static_cast<std::size_t>(i)].instance, i + 1)
                << "gap at position " << i;
        }
        for (int node = 1; node < n_; ++node) {
            EXPECT_EQ(nodes_[static_cast<std::size_t>(node)]->decisions, reference)
                << "node " << node << " disagrees with node 0";
        }
    }

    bool all_links_up() const {
        for (const auto& node : nodes_) {
            for (const ProcessId p : node->linked) {
                if (!node->conns->peer_up(p)) return false;
            }
        }
        return true;
    }

    Reactor& reactor() { return reactor_; }
    NodeHarness& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
    int size() const { return n_; }

private:
    int n_;
    Reactor reactor_;
    std::vector<std::unique_ptr<NodeHarness>> nodes_;
    std::vector<std::int64_t> next_seq_ = std::vector<std::int64_t>(
        static_cast<std::size_t>(n_), 0);
};

TEST(RealTransport, MeshComesUp) {
    LoopbackCluster cluster(3, Setup::Baseline);
    EXPECT_TRUE(cluster.reactor().run_until([&] { return cluster.all_links_up(); },
                                            SimTime::seconds(10)));
    for (int i = 0; i < cluster.size(); ++i) {
        const auto& c = cluster.node(i).conns->counters();
        EXPECT_GT(c.links_up, 0u) << "node " << i;
        EXPECT_EQ(c.protocol_errors, 0u) << "node " << i;
    }
}

TEST(RealTransport, BaselineClusterAgrees) {
    constexpr int kValues = 60;
    LoopbackCluster cluster(3, Setup::Baseline);
    cluster.start();
    cluster.submit(kValues);
    ASSERT_TRUE(cluster.run_until_delivered(kValues)) << "cluster did not converge";
    cluster.expect_agreement(kValues);
}

TEST(RealTransport, GossipClusterAgrees) {
    constexpr int kValues = 100;
    LoopbackCluster cluster(5, Setup::Gossip);
    cluster.start();
    cluster.submit(kValues);
    ASSERT_TRUE(cluster.run_until_delivered(kValues)) << "cluster did not converge";
    cluster.expect_agreement(kValues);

    // Dissemination really went over the overlay: every node both sent and
    // received envelopes, and nothing failed to decode.
    for (int i = 0; i < cluster.size(); ++i) {
        const auto& t = cluster.node(i).transport->counters();
        EXPECT_GT(t.envelopes_sent, 0u) << "node " << i;
        EXPECT_GT(t.envelopes_received, 0u) << "node " << i;
        EXPECT_EQ(t.decode_errors, 0u) << "node " << i;
    }
}

TEST(RealTransport, SemanticClusterAgrees) {
    constexpr int kValues = 100;
    LoopbackCluster cluster(5, Setup::Semantic);
    cluster.start();
    cluster.submit(kValues);
    ASSERT_TRUE(cluster.run_until_delivered(kValues)) << "cluster did not converge";
    cluster.expect_agreement(kValues);

    // The semantic hooks were live on the real wire: with 100 instances'
    // Phase 2b traffic crossing 5 nodes, at least one aggregate must have
    // been built somewhere (and survived the codec round-trip).
    std::uint64_t aggregates = 0;
    for (int i = 0; i < cluster.size(); ++i) {
        aggregates += cluster.node(i).semantics->stats().aggregates_built;
        EXPECT_EQ(cluster.node(i).transport->counters().decode_errors, 0u);
    }
    EXPECT_GT(aggregates, 0u);
}

TEST(RealTransport, SecondWaveAfterQuiescence) {
    // Links and timers must stay healthy after the first burst drains:
    // submit, wait, then submit again and require the same agreement.
    constexpr int kFirst = 30;
    constexpr int kSecond = 30;
    LoopbackCluster cluster(3, Setup::Semantic);
    cluster.start();
    cluster.submit(kFirst);
    ASSERT_TRUE(cluster.run_until_delivered(kFirst));

    // A quiescent beat on the real clock (heartbeats keep flowing).
    cluster.reactor().run_until([] { return false; }, SimTime::millis(50));

    cluster.submit(kSecond);
    ASSERT_TRUE(cluster.run_until_delivered(kFirst + kSecond));
    cluster.expect_agreement(kFirst + kSecond);
}

}  // namespace
}  // namespace gossipc::runtime
