// Regression tests for protocol bugs found during development — each one
// encodes a scenario that once failed.
#include <gtest/gtest.h>

#include "core/semantic_gossip.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

using testutil::make_value;

// Bug 1: the learner's decided-listener only fired if the value payload was
// already cached; when the quorum of Phase 2b outran the Phase 2a (common
// over gossip), the coordinator never saw its proposal decided — leaving it
// retransmitting forever.
TEST(Regression, DecidedListenerFiresWhenPayloadArrivesLate) {
    Learner learner(2);
    std::vector<InstanceId> decided;
    CpuContext ctx{SimTime::zero()};
    learner.set_decided_listener(
        [&](InstanceId i, const Value&, bool, CpuContext&) { decided.push_back(i); });
    const Value v = make_value(0, 1);
    // Quorum of 2b arrives before the 2a carrying the value.
    learner.on_phase2b(Phase2bMsg{0, 1, 1, v.id, v.digest()}, ctx);
    learner.on_phase2b(Phase2bMsg{1, 1, 1, v.id, v.digest()}, ctx);
    EXPECT_TRUE(decided.empty());  // decided, but payload unknown
    EXPECT_TRUE(learner.knows_decision(1));
    learner.on_phase2a(Phase2aMsg{0, 1, 1, v}, ctx);  // payload lands late
    ASSERT_EQ(decided.size(), 1u);
    EXPECT_EQ(decided[0], 1);
    EXPECT_EQ(learner.frontier(), 2);  // and delivery proceeded
}

TEST(Regression, DecidedListenerFiresOnlyOnce) {
    Learner learner(2);
    int fired = 0;
    CpuContext ctx{SimTime::zero()};
    learner.set_decided_listener([&](InstanceId, const Value&, bool, CpuContext&) { ++fired; });
    const Value v = make_value(0, 1);
    learner.on_phase2b(Phase2bMsg{0, 1, 1, v.id, v.digest()}, ctx);
    learner.on_phase2b(Phase2bMsg{1, 1, 1, v.id, v.digest()}, ctx);
    learner.on_phase2a(Phase2aMsg{0, 1, 1, v}, ctx);
    learner.on_phase2a(Phase2aMsg{0, 1, 1, v}, ctx);  // retransmitted 2a
    learner.on_decision(DecisionMsg{0, 1, v.id, v.digest(), v}, ctx);
    EXPECT_EQ(fired, 1);
}

// Bug 2: complete_phase1 skipped reported-but-already-decided instances
// WITHOUT advancing the proposal cursor, so a new coordinator proposed fresh
// values into decided instances; those proposals could never be decided with
// their values and were stuck (retransmitting) forever.
TEST(Regression, NewCoordinatorSkipsDecidedInstances) {
    Simulator sim;
    testutil::FakeTransport transport(sim, 1);
    PaxosConfig pc;
    pc.n = 5;
    pc.id = 1;
    pc.coordinator = 1;
    pc.timeouts_enabled = false;
    Learner learner(pc.quorum());
    Coordinator coordinator(pc, transport, learner);
    CpuContext ctx{SimTime::zero()};

    // The learner already knows instances 1..3 decided (via quorums).
    for (InstanceId i = 1; i <= 3; ++i) {
        const Value v = make_value(7, i);
        learner.on_phase2a(Phase2aMsg{0, i, 1, v}, ctx);
        for (ProcessId s = 0; s < 3; ++s) {
            learner.on_phase2b(Phase2bMsg{s, i, 1, v.id, v.digest()}, ctx);
        }
    }
    coordinator.start(ctx);
    // Acceptors report instances 1..3 as accepted in round 1 (already
    // decided locally) and nothing else.
    std::vector<AcceptedEntry> accepted;
    for (InstanceId i = 1; i <= 3; ++i) accepted.push_back({i, 1, make_value(7, i)});
    coordinator.on_phase1b(Phase1bMsg{0, coordinator.round(), 1, accepted}, ctx);
    coordinator.on_phase1b(Phase1bMsg{2, coordinator.round(), 1, accepted}, ctx);
    coordinator.on_phase1b(Phase1bMsg{3, coordinator.round(), 1, accepted}, ctx);
    ASSERT_TRUE(coordinator.phase1_complete());
    EXPECT_EQ(coordinator.counters().reproposals, 0u);  // all already decided

    // A fresh client value must land beyond the decided prefix.
    coordinator.on_client_value(make_value(9, 1), ctx);
    const auto p2a = transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 1u);
    EXPECT_GE(static_cast<const Phase2aMsg&>(*p2a[0]).instance(), 4);
}

// Bug 2b: when a proposal loses its instance to a value chosen in a lower
// round, the value must be re-proposed in a fresh instance, not dropped.
TEST(Regression, BeatenProposalIsReproposed) {
    Simulator sim;
    testutil::FakeTransport transport(sim, 0);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 0;
    pc.timeouts_enabled = false;
    Learner learner(pc.quorum());
    Coordinator coordinator(pc, transport, learner);
    learner.set_decided_listener(
        [&](InstanceId i, const Value& v, bool q, CpuContext& c) {
            coordinator.on_decided(i, v, q, c);
        });
    CpuContext ctx{SimTime::zero()};
    coordinator.start(ctx);
    coordinator.on_phase1b(Phase1bMsg{0, coordinator.round(), 1, {}}, ctx);
    coordinator.on_phase1b(Phase1bMsg{1, coordinator.round(), 1, {}}, ctx);
    const Value mine = make_value(5, 1);
    coordinator.on_client_value(mine, ctx);  // proposed at instance 1

    // Instance 1 turns out decided with a different value (older round).
    const Value other = make_value(6, 1);
    learner.on_phase2a(Phase2aMsg{2, 1, 0, other}, ctx);
    learner.on_decision(DecisionMsg{2, 1, other.id, other.digest()}, ctx);

    // Our value must have been re-proposed at instance 2.
    const auto p2a = transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 2u);
    const auto& m = static_cast<const Phase2aMsg&>(*p2a[1]);
    EXPECT_EQ(m.instance(), 2);
    EXPECT_EQ(m.value(), mine);
}

// Bug 3: acceptor state must NOT be garbage-collected below the local
// delivery frontier — a later Phase 1 has to see those accepted values or a
// new coordinator can write different values into decided instances. Guard
// the invariant at the system level: after a full run, every acceptor still
// reports its accepted values from instance 1 on.
TEST(Regression, AcceptedStateRetainedForPhase1) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = 7;
    cfg.total_rate = 26.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(1.5);
    Deployment d(cfg);
    d.run();
    const auto frontier = d.process(1).learner().frontier();
    ASSERT_GT(frontier, 5);
    const auto report = d.process(1).acceptor().on_phase1a(999, 1);
    ASSERT_TRUE(report.promised);
    // Every decided instance is still covered by accepted state.
    std::set<InstanceId> reported;
    for (const auto& e : report.accepted) reported.insert(e.instance);
    for (InstanceId i = 1; i < frontier; ++i) {
        EXPECT_TRUE(reported.contains(i)) << "instance " << i << " GC'd too early";
    }
}

}  // namespace
}  // namespace gossipc
