// Regression tests for protocol bugs found during development — each one
// encodes a scenario that once failed.
#include <gtest/gtest.h>

#include <string>

#include "core/semantic_gossip.hpp"
#include "fault/datagram_faults.hpp"
#include "runtime/chaos_bridge.hpp"
#include "runtime/reactor.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

using testutil::make_value;

// Bug 1: the learner's decided-listener only fired if the value payload was
// already cached; when the quorum of Phase 2b outran the Phase 2a (common
// over gossip), the coordinator never saw its proposal decided — leaving it
// retransmitting forever.
TEST(Regression, DecidedListenerFiresWhenPayloadArrivesLate) {
    Learner learner(2);
    std::vector<InstanceId> decided;
    CpuContext ctx{SimTime::zero()};
    learner.set_decided_listener(
        [&](InstanceId i, const Value&, bool, CpuContext&) { decided.push_back(i); });
    const Value v = make_value(0, 1);
    // Quorum of 2b arrives before the 2a carrying the value.
    learner.on_phase2b(Phase2bMsg{0, 1, 1, v.id, v.digest()}, ctx);
    learner.on_phase2b(Phase2bMsg{1, 1, 1, v.id, v.digest()}, ctx);
    EXPECT_TRUE(decided.empty());  // decided, but payload unknown
    EXPECT_TRUE(learner.knows_decision(1));
    learner.on_phase2a(Phase2aMsg{0, 1, 1, v}, ctx);  // payload lands late
    ASSERT_EQ(decided.size(), 1u);
    EXPECT_EQ(decided[0], 1);
    EXPECT_EQ(learner.frontier(), 2);  // and delivery proceeded
}

TEST(Regression, DecidedListenerFiresOnlyOnce) {
    Learner learner(2);
    int fired = 0;
    CpuContext ctx{SimTime::zero()};
    learner.set_decided_listener([&](InstanceId, const Value&, bool, CpuContext&) { ++fired; });
    const Value v = make_value(0, 1);
    learner.on_phase2b(Phase2bMsg{0, 1, 1, v.id, v.digest()}, ctx);
    learner.on_phase2b(Phase2bMsg{1, 1, 1, v.id, v.digest()}, ctx);
    learner.on_phase2a(Phase2aMsg{0, 1, 1, v}, ctx);
    learner.on_phase2a(Phase2aMsg{0, 1, 1, v}, ctx);  // retransmitted 2a
    learner.on_decision(DecisionMsg{0, 1, v.id, v.digest(), v}, ctx);
    EXPECT_EQ(fired, 1);
}

// Bug 2: complete_phase1 skipped reported-but-already-decided instances
// WITHOUT advancing the proposal cursor, so a new coordinator proposed fresh
// values into decided instances; those proposals could never be decided with
// their values and were stuck (retransmitting) forever.
TEST(Regression, NewCoordinatorSkipsDecidedInstances) {
    Simulator sim;
    testutil::FakeTransport transport(sim, 1);
    PaxosConfig pc;
    pc.n = 5;
    pc.id = 1;
    pc.coordinator = 1;
    pc.timeouts_enabled = false;
    Learner learner(pc.quorum());
    Coordinator coordinator(pc, transport, learner);
    CpuContext ctx{SimTime::zero()};

    // The learner already knows instances 1..3 decided (via quorums).
    for (InstanceId i = 1; i <= 3; ++i) {
        const Value v = make_value(7, i);
        learner.on_phase2a(Phase2aMsg{0, i, 1, v}, ctx);
        for (ProcessId s = 0; s < 3; ++s) {
            learner.on_phase2b(Phase2bMsg{s, i, 1, v.id, v.digest()}, ctx);
        }
    }
    coordinator.start(ctx);
    // Acceptors report instances 1..3 as accepted in round 1 (already
    // decided locally) and nothing else.
    std::vector<AcceptedEntry> accepted;
    for (InstanceId i = 1; i <= 3; ++i) accepted.push_back({i, 1, make_value(7, i)});
    coordinator.on_phase1b(Phase1bMsg{0, coordinator.round(), 1, accepted}, ctx);
    coordinator.on_phase1b(Phase1bMsg{2, coordinator.round(), 1, accepted}, ctx);
    coordinator.on_phase1b(Phase1bMsg{3, coordinator.round(), 1, accepted}, ctx);
    ASSERT_TRUE(coordinator.phase1_complete());
    EXPECT_EQ(coordinator.counters().reproposals, 0u);  // all already decided

    // A fresh client value must land beyond the decided prefix.
    coordinator.on_client_value(make_value(9, 1), ctx);
    const auto p2a = transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 1u);
    EXPECT_GE(static_cast<const Phase2aMsg&>(*p2a[0]).instance(), 4);
}

// Bug 2b: when a proposal loses its instance to a value chosen in a lower
// round, the value must be re-proposed in a fresh instance, not dropped.
TEST(Regression, BeatenProposalIsReproposed) {
    Simulator sim;
    testutil::FakeTransport transport(sim, 0);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 0;
    pc.timeouts_enabled = false;
    Learner learner(pc.quorum());
    Coordinator coordinator(pc, transport, learner);
    learner.set_decided_listener(
        [&](InstanceId i, const Value& v, bool q, CpuContext& c) {
            coordinator.on_decided(i, v, q, c);
        });
    CpuContext ctx{SimTime::zero()};
    coordinator.start(ctx);
    coordinator.on_phase1b(Phase1bMsg{0, coordinator.round(), 1, {}}, ctx);
    coordinator.on_phase1b(Phase1bMsg{1, coordinator.round(), 1, {}}, ctx);
    const Value mine = make_value(5, 1);
    coordinator.on_client_value(mine, ctx);  // proposed at instance 1

    // Instance 1 turns out decided with a different value (older round).
    const Value other = make_value(6, 1);
    learner.on_phase2a(Phase2aMsg{2, 1, 0, other}, ctx);
    learner.on_decision(DecisionMsg{2, 1, other.id, other.digest()}, ctx);

    // Our value must have been re-proposed at instance 2.
    const auto p2a = transport.sent_of(PaxosMsgType::Phase2a);
    ASSERT_EQ(p2a.size(), 2u);
    const auto& m = static_cast<const Phase2aMsg&>(*p2a[1]);
    EXPECT_EQ(m.instance(), 2);
    EXPECT_EQ(m.value(), mine);
}

// Bug 3: acceptor state must NOT be garbage-collected below the local
// delivery frontier — a later Phase 1 has to see those accepted values or a
// new coordinator can write different values into decided instances. Guard
// the invariant at the system level: after a full run, every acceptor still
// reports its accepted values from instance 1 on.
TEST(Regression, AcceptedStateRetainedForPhase1) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = 7;
    cfg.total_rate = 26.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(1.5);
    Deployment d(cfg);
    d.run();
    const auto frontier = d.process(1).learner().frontier();
    ASSERT_GT(frontier, 5);
    const auto report = d.process(1).acceptor().on_phase1a(999, 1);
    ASSERT_TRUE(report.promised);
    // Every decided instance is still covered by accepted state.
    std::set<InstanceId> reported;
    for (const auto& e : report.accepted) reported.insert(e.instance);
    for (InstanceId i = 1; i < frontier; ++i) {
        EXPECT_TRUE(reported.contains(i)) << "instance " << i << " GC'd too early";
    }
}

// Chaos seed-replay corpus: byte-exact pins of generated schedules and an
// injected-fault log. These strings ARE the replay contract — archived chaos
// runs are reproduced from (seed, profile), so a change that alters them
// silently invalidates every pinned seed. Deliberate generator changes must
// update the corpus (and accept that old seeds no longer replay).
TEST(Regression, ChaosCorpusLightProfileSeed1) {
    const Graph overlay = make_connected_overlay(7, 42);
    const auto s = generate_chaos(7, 0, ChaosProfile::light(), 1, &overlay);
    EXPECT_EQ(s.describe(),
              "268346351 crash p4 preserve\n"
              "516939933 restart p4\n"
              "663965334 churn-drop 4-6\n"
              "811552381 partition {6}\n"
              "1018163822 churn-add 4-6\n"
              "1065652768 link-fault 0->6 loss=0.139436 delay_ns=184601 dup=0.0628049"
              " reorder_ns=491612\n"
              "1225669766 heal\n"
              "1333708675 link-fault-end 0->6\n"
              "1456495703 churn-add 3-1\n"
              "1987368994 churn-drop 3-1\n");
}

TEST(Regression, ChaosCorpusModerateProfileSeed2NoOverlay) {
    const auto s = generate_chaos(7, 0, ChaosProfile::moderate(), 2, nullptr);
    EXPECT_EQ(s.describe(),
              "306956950 link-fault 0->6 loss=0.385706 delay_ns=13122451 dup=0.1892"
              " reorder_ns=1430969\n"
              "533915043 crash p4 preserve\n"
              "715766989 link-fault 0->4 loss=0.248772 delay_ns=8100275 dup=0.209013"
              " reorder_ns=3505052\n"
              "777484571 restart p4\n"
              "861498261 partition {1,2,6}\n"
              "1098409671 link-fault-end 0->4\n"
              "1190694498 link-fault-end 0->6\n"
              "1377631109 heal\n"
              "1425573231 link-fault 5->0 loss=0.126239 delay_ns=321830 dup=0.0801682"
              " reorder_ns=3740916\n"
              "1671101057 crash p3 preserve\n"
              "1864883261 link-fault-end 5->0\n"
              "2094832810 restart p3\n");
}

// The heavy-failover profile pins the permanent coordinator crash at the
// configured fraction of the horizon (here 750ms, no restart) and must
// never RNG-redirect a randomly drawn crash onto the coordinator.
TEST(Regression, ChaosCorpusHeavyFailoverProfileSeed7) {
    const auto s = generate_chaos(7, 0, ChaosProfile::heavy_failover(), 7, nullptr);
    EXPECT_EQ(s.describe(),
              "321213166 partition {3}\n"
              "357821707 link-fault 0->4 loss=0.039594 delay_ns=8279863 dup=0.289288"
              " reorder_ns=4087949\n"
              "469722493 crash p5 wipe\n"
              "650749399 restart p5\n"
              "744357172 link-fault 0->3 loss=0.303353 delay_ns=17834699 dup=0.275408"
              " reorder_ns=4400415\n"
              "750000000 crash p0 preserve\n"
              "802103713 crash p1 wipe\n"
              "1017806467 link-fault 0->4 loss=0.543506 delay_ns=12876424 dup=0.206731"
              " reorder_ns=6522274\n"
              "1068666338 heal\n"
              "1120332734 restart p1\n"
              "1122954782 link-fault-end 0->4\n"
              "1136295287 link-fault 0->6 loss=0.192585 delay_ns=28311525 dup=0.402059"
              " reorder_ns=2245854\n"
              "1439082456 crash p6 preserve\n"
              "1439225057 link-fault 4->0 loss=0.363423 delay_ns=9786251 dup=0.125252"
              " reorder_ns=5059612\n"
              "1569077820 partition {5}\n"
              "1576805216 link-fault-end 0->3\n"
              "1646118895 link-fault 0->2 loss=0.248162 delay_ns=8708626 dup=0.309825"
              " reorder_ns=2555223\n"
              "1669103021 link-fault-end 0->6\n"
              "1744891925 restart p6\n"
              "1790161396 crash p1 preserve\n"
              "1902252436 link-fault-end 0->4\n"
              "1975144894 link-fault-end 0->2\n"
              "2161064015 restart p1\n"
              "2183727618 heal\n"
              "2207374266 link-fault-end 4->0\n");
}

TEST(Regression, ChaosCorpusInjectedFaultLogIsPinned) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Baseline;
    cfg.n = 5;
    cfg.faults.crash(SimTime::millis(10), 2, /*wipe_state=*/true);
    cfg.faults.restart(SimTime::millis(20), 2);
    cfg.faults.restart(SimTime::millis(25), 3);  // never crashed -> skip
    cfg.faults.partition(SimTime::millis(30), {1});
    cfg.faults.heal(SimTime::millis(40));
    cfg.faults.churn_drop(SimTime::millis(45), 0, 1);  // no overlay -> skip
    Deployment d(cfg);
    d.start_processes();
    d.simulator().run_until(SimTime::millis(50));
    EXPECT_EQ(d.fault_injector()->rendered_log(),
              "10000000 crash p2 wipe\n"
              "20000000 restart p2\n"
              "25000000 restart p3 [skipped: not crashed]\n"
              "30000000 partition {1}\n"
              "40000000 heal\n"
              "45000000 churn-drop 0-1 [skipped: no overlay]\n");
}

// Runtime chaos-bridge corpus: the injected-fault log the ChaosBridge
// produces for the acceptance sweep's failover cell (13 processes,
// heavy_failover, seed 101). Log lines are stamped with scheduled — not
// wall-clock — time and every skip decision is a pure function of the
// schedule and overlay, so the log is byte-identical no matter how the
// real reactor's clock jitters. Stub hooks stand in for the socket stack:
// the log does not depend on what the hooks do, only on their presence.
TEST(Regression, RuntimeChaosBridgeHeavyFailoverLogSeed101) {
    Graph overlay = make_connected_overlay(13, 42);
    auto schedule = generate_chaos(13, 0, ChaosProfile::heavy_failover(), 101, &overlay);
    runtime::Reactor reactor;
    runtime::ChaosBridge::Hooks hooks;
    hooks.crash_node = [](ProcessId) {};
    hooks.restart_node = [](ProcessId, bool) {};
    hooks.set_link = [](ProcessId, ProcessId, const fault::DatagramFaultSpec&) {};
    hooks.clear_link = [](ProcessId, ProcessId) {};
    hooks.overlay = &overlay;
    hooks.drop_edge = [](ProcessId, ProcessId) {};
    hooks.add_edge = [](ProcessId, ProcessId) {};
    runtime::ChaosBridge bridge(reactor, 13, std::move(schedule), std::move(hooks));
    bridge.arm();
    // The reactor is a real poll(2) loop: this replays the full 2.25s chaos
    // window in wall time.
    ASSERT_TRUE(reactor.run_until([&] { return bridge.done(); }, SimTime::seconds(10)));
    EXPECT_EQ(
        bridge.rendered_log(),
        "276017468 crash p10 preserve\n"
        "455060853 churn-add 10-3 [skipped: edge present]\n"
        "624292204 restart p10\n"
        "688386035 partition {2}\n"
        "723246100 link-fault 3->10 loss=0.344157 delay_ns=48132071 dup=0.164365"
        " reorder_ns=2659554\n"
        "750000000 crash p0 preserve\n"
        "752341103 crash p3 wipe\n"
        "771586070 link-fault 5->1 loss=0.127676 delay_ns=46771387 dup=0.0556903"
        " reorder_ns=3809206\n"
        "853506343 link-fault 8->10 loss=0.237741 delay_ns=53939245 dup=0.26079"
        " reorder_ns=90930\n"
        "865600507 link-fault 0->6 loss=0.1572 delay_ns=1720501 dup=0.34539"
        " reorder_ns=3832460\n"
        "870963769 link-fault 0->9 loss=0.464641 delay_ns=42651949 dup=0.089446"
        " reorder_ns=233299\n"
        "897774358 heal\n"
        "1012239495 link-fault 12->11 loss=0.586401 delay_ns=13851323 dup=0.344049"
        " reorder_ns=2906935\n"
        "1024965037 churn-drop 10-3\n"
        "1054222312 link-fault-end 8->10\n"
        "1100835519 churn-add 5-10\n"
        "1165265712 link-fault-end 3->10\n"
        "1199207619 churn-drop 0-11\n"
        "1232287361 restart p3\n"
        "1250237594 link-fault-end 5->1\n"
        "1290189220 churn-add 7-9\n"
        "1321154557 churn-drop 0-5\n"
        "1377909505 crash p12 wipe\n"
        "1389076940 churn-drop 9-12\n"
        "1462484874 link-fault-end 0->6\n"
        "1534965331 partition {9}\n"
        "1622101113 churn-add 0-5\n"
        "1631429977 link-fault-end 0->9\n"
        "1661150994 churn-drop 5-10\n"
        "1698927436 restart p12\n"
        "1731007362 churn-add 0-11\n"
        "1855365770 crash p7 preserve\n"
        "1865670231 churn-drop 7-9\n"
        "1887623774 link-fault-end 12->11\n"
        "1893351455 heal\n"
        "1939445214 churn-drop 2-8\n"
        "1947577853 churn-add 0-4\n"
        "1974100479 churn-add 9-12\n"
        "2016736543 restart p7\n"
        "2250000000 churn-add 2-8\n"
        "2250000000 churn-drop 0-4\n");
}

// UDP datagram-fate corpus: the same replay contract for the lossy-link
// harness (DESIGN.md §12). A datagram's fate is a pure function of
// (seed, from, to, per-link seq) — LossyDatagramNetwork::fault_log() lines
// are exactly these describe() strings, so pinning the model pins every
// archived chaos.udp seed. Deliberate fate-model changes must update this
// corpus and accept that old seeds no longer replay.
TEST(Regression, UdpDatagramFateCorpusSeed99) {
    fault::DatagramFaultSpec spec;
    spec.loss = 0.25;
    spec.duplicate = 0.15;
    spec.reorder_window = SimTime::millis(1);
    spec.truncate = 0.20;
    const fault::DatagramFaultModel model(99);

    std::string out;
    const int links[3][2] = {{0, 1}, {1, 0}, {0, 2}};
    for (const auto& link : links) {
        for (std::uint64_t seq = 1; seq <= 8; ++seq) {
            const auto fate = model.decide(spec, link[0], link[1], seq);
            const std::string line =
                fault::DatagramFaultModel::describe(link[0], link[1], seq, fate);
            if (!line.empty()) {
                out += line;
                out += '\n';
            }
        }
    }
    EXPECT_EQ(out,
              "0->1 seq=1 drop\n"
              "0->1 seq=2 delay_ns=935641 dup_delay_ns=862870\n"
              "0->1 seq=3 drop\n"
              "0->1 seq=4 delay_ns=907791 dup_delay_ns=150876\n"
              "0->1 seq=5 delay_ns=96297 dup_delay_ns=355882\n"
              "0->1 seq=6 delay_ns=464602\n"
              "0->1 seq=7 delay_ns=732274\n"
              "0->1 seq=8 delay_ns=962238\n"
              "1->0 seq=1 delay_ns=354763\n"
              "1->0 seq=2 delay_ns=860115 trunc_keep=0.708014\n"
              "1->0 seq=3 delay_ns=952554\n"
              "1->0 seq=4 delay_ns=348362\n"
              "1->0 seq=5 drop\n"
              "1->0 seq=6 drop\n"
              "1->0 seq=7 delay_ns=85424\n"
              "1->0 seq=8 drop\n"
              "0->2 seq=1 drop\n"
              "0->2 seq=2 delay_ns=875700\n"
              "0->2 seq=3 delay_ns=582436\n"
              "0->2 seq=4 delay_ns=455465\n"
              "0->2 seq=5 drop\n"
              "0->2 seq=6 delay_ns=23851\n"
              "0->2 seq=7 delay_ns=36692 trunc_keep=0.691527\n"
              "0->2 seq=8 drop\n");

    // Fates are stateless: querying out of order, or from a fresh model with
    // the same seed, reproduces the exact same line.
    const fault::DatagramFaultModel replay(99);
    EXPECT_EQ(fault::DatagramFaultModel::describe(0, 1, 3, replay.decide(spec, 0, 1, 3)),
              "0->1 seq=3 drop");

    // A disabled spec never harms a datagram, whatever the seed says.
    const auto clean = replay.decide(fault::DatagramFaultSpec{}, 0, 1, 3);
    EXPECT_TRUE(clean.clean());
}

}  // namespace
}  // namespace gossipc
