// Shared test helpers: an in-memory transport with scriptable delivery and
// small factories for protocol messages.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "gossip/hooks.hpp"
#include "paxos/message.hpp"
#include "sim/simulator.hpp"
#include "transport/transport.hpp"

namespace gossipc::testutil {

/// Transport that records outgoing messages and lets tests deliver messages
/// by hand. schedule()/post() run through a Simulator so timer-driven logic
/// is testable.
class FakeTransport final : public Transport {
public:
    struct Sent {
        bool broadcast = false;
        ProcessId to = -1;
        PaxosMessagePtr msg;
    };

    FakeTransport(Simulator& sim, ProcessId self) : sim_(sim), self_(self) {}

    ProcessId self() const override { return self_; }

    void broadcast(PaxosMessagePtr msg, CpuContext& ctx) override {
        note_origination(ctx.now());
        sent.push_back(Sent{true, -1, msg});
        if (loopback) deliver_up(msg, ctx);
    }

    void send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) override {
        if (to != self_) note_origination(ctx.now());
        sent.push_back(Sent{false, to, msg});
        if (loopback && to == self_) deliver_up(msg, ctx);
    }

    void schedule(SimTime delay, std::function<void(CpuContext&)> fn) override {
        sim_.schedule_after(delay, [this, fn = std::move(fn)] {
            CpuContext ctx{sim_.now()};
            fn(ctx);
        });
    }

    void schedule_every(SimTime period, std::function<void(CpuContext&)> fn) override {
        sim_.schedule_after(period, [this, period, fn = std::move(fn)]() mutable {
            CpuContext ctx{sim_.now()};
            fn(ctx);
            schedule_every(period, std::move(fn));
        });
    }

    void post(std::function<void(CpuContext&)> fn) override {
        CpuContext ctx{sim_.now()};
        fn(ctx);
    }

    /// Delivers a message to the upper layer as if received.
    void inject(const PaxosMessagePtr& msg) {
        CpuContext ctx{sim_.now()};
        deliver_up(msg, ctx);
    }

    /// Messages of a given type, in send order.
    std::vector<PaxosMessagePtr> sent_of(PaxosMsgType type) const {
        std::vector<PaxosMessagePtr> out;
        for (const auto& s : sent) {
            if (s.msg->type() == type) out.push_back(s.msg);
        }
        return out;
    }

    std::vector<Sent> sent;
    bool loopback = true;  ///< deliver broadcasts/self-sends locally
private:
    Simulator& sim_;
    ProcessId self_;
};

inline Value make_value(std::int32_t client, std::int64_t seq, std::uint32_t size = 1024) {
    Value v;
    v.id = ValueId{client, seq};
    v.size_bytes = size;
    return v;
}

inline std::shared_ptr<const Phase2bMsg> make_2b(ProcessId sender, InstanceId inst, Round round,
                                                 const Value& v, std::int32_t attempt = 0) {
    return std::make_shared<Phase2bMsg>(sender, inst, round, v.id, v.digest(), attempt);
}

inline GossipAppMessage wrap(PaxosMessagePtr msg) {
    GossipAppMessage app;
    app.id = msg->unique_key();
    app.origin = msg->sender();
    app.payload = std::move(msg);
    return app;
}

}  // namespace gossipc::testutil
