// Unit & property tests for the gossip layer: push dissemination, duplicate
// suppression, hook invocation, queue caps, and the pull/push-pull
// extensions.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "gossip/gossip_node.hpp"
#include "net/network.hpp"
#include "overlay/random_overlay.hpp"
#include "sim/simulator.hpp"

namespace gossipc {
namespace {

class Payload final : public MessageBody {
public:
    explicit Payload(std::uint32_t size = 64) : size_(size) {}
    std::uint32_t wire_size() const override { return size_; }
    std::string describe() const override { return "payload"; }

private:
    std::uint32_t size_;
};

GossipAppMessage make_msg(GossipMsgId id, ProcessId origin, std::uint32_t size = 64) {
    GossipAppMessage m;
    m.id = id;
    m.origin = origin;
    m.payload = std::make_shared<Payload>(size);
    return m;
}

struct GossipFixture {
    Simulator sim;
    Network net;
    std::vector<std::unique_ptr<GossipHooks>> hooks;
    std::vector<std::unique_ptr<GossipNode>> nodes;
    std::vector<std::multiset<GossipMsgId>> delivered;

    GossipFixture(const Graph& overlay, GossipNode::Params gp = {},
                  Network::Params np = {},
                  std::function<std::unique_ptr<GossipHooks>(ProcessId)> hook_factory = {})
        : net(sim, LatencyModel::aws(), overlay.size(), np),
          delivered(static_cast<std::size_t>(overlay.size())) {
        for (const auto& [a, b] : overlay.edges()) net.allow_link(a, b);
        for (ProcessId id = 0; id < overlay.size(); ++id) {
            hooks.push_back(hook_factory ? hook_factory(id)
                                         : std::make_unique<PassThroughHooks>());
            nodes.push_back(std::make_unique<GossipNode>(net.node(id), overlay.neighbors(id),
                                                         gp, *hooks.back()));
            nodes.back()->set_deliver([this, id](const GossipAppMessage& m, CpuContext&) {
                delivered[static_cast<std::size_t>(id)].insert(m.id);
            });
        }
    }
};

class PushDissemination : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PushDissemination, BroadcastReachesEveryNodeExactlyOnce) {
    const auto [n, seed] = GetParam();
    const Graph overlay = make_connected_overlay(n, seed);
    GossipFixture f(overlay);
    for (GossipMsgId id = 1; id <= 5; ++id) {
        f.nodes[0]->post_broadcast(make_msg(id, 0));
    }
    f.sim.run_until_idle();
    for (int v = 0; v < n; ++v) {
        for (GossipMsgId id = 1; id <= 5; ++id) {
            EXPECT_EQ(f.delivered[static_cast<std::size_t>(v)].count(id), 1u)
                << "node " << v << " msg " << id;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, PushDissemination,
                         ::testing::Combine(::testing::Values(4, 13, 30, 53),
                                            ::testing::Values(1ull, 7ull, 42ull)));

TEST(GossipNodeTest, DuplicatesSuppressedOnCycles) {
    Graph triangle(3);
    triangle.add_edge(0, 1);
    triangle.add_edge(1, 2);
    triangle.add_edge(2, 0);
    GossipFixture f(triangle);
    f.nodes[0]->post_broadcast(make_msg(99, 0));
    f.sim.run_until_idle();
    std::uint64_t duplicates = 0;
    for (const auto& node : f.nodes) duplicates += node->counters().duplicates;
    // On a triangle both non-origin nodes forward to each other: 2 duplicates.
    EXPECT_GT(duplicates, 0u);
    for (int v = 0; v < 3; ++v) {
        EXPECT_EQ(f.delivered[static_cast<std::size_t>(v)].count(99), 1u);
    }
}

TEST(GossipNodeTest, NoForwardBackToSender) {
    Graph line(2);
    line.add_edge(0, 1);
    GossipFixture f(line);
    f.nodes[0]->post_broadcast(make_msg(5, 0));
    f.sim.run_until_idle();
    // Node 1's only peer is the message's origin: nothing to forward.
    EXPECT_EQ(f.net.node(1).counters().sent, 0u);
    EXPECT_EQ(f.nodes[1]->counters().duplicates, 0u);
}

TEST(GossipNodeTest, RebroadcastOfKnownIdIgnored) {
    Graph line(2);
    line.add_edge(0, 1);
    GossipFixture f(line);
    f.nodes[0]->post_broadcast(make_msg(5, 0));
    f.nodes[0]->post_broadcast(make_msg(5, 0));
    f.sim.run_until_idle();
    EXPECT_EQ(f.delivered[0].count(5), 1u);
    EXPECT_EQ(f.delivered[1].count(5), 1u);
}

class DropForPeerHooks final : public GossipHooks {
public:
    explicit DropForPeerHooks(ProcessId blocked) : blocked_(blocked) {}
    bool validate(const GossipAppMessage&, ProcessId peer) override {
        return peer != blocked_;
    }

private:
    ProcessId blocked_;
};

TEST(GossipNodeTest, ValidateHookFiltersPerPeer) {
    Graph line(3);  // 0-1-2
    line.add_edge(0, 1);
    line.add_edge(1, 2);
    GossipFixture f(line, {}, {}, [](ProcessId) -> std::unique_ptr<GossipHooks> {
        return std::make_unique<DropForPeerHooks>(2);
    });
    f.nodes[0]->post_broadcast(make_msg(11, 0));
    f.sim.run_until_idle();
    EXPECT_EQ(f.delivered[1].count(11), 1u);
    EXPECT_EQ(f.delivered[2].count(11), 0u);  // filtered at node 1
    EXPECT_GT(f.nodes[1]->counters().filtered, 0u);
}

class BatchRecordingHooks final : public GossipHooks {
public:
    std::vector<std::size_t>* batch_sizes;
    explicit BatchRecordingHooks(std::vector<std::size_t>* sizes) : batch_sizes(sizes) {}
    std::vector<GossipAppMessage> aggregate(std::vector<GossipAppMessage> pending,
                                            ProcessId) override {
        batch_sizes->push_back(pending.size());
        return pending;
    }
};

TEST(GossipNodeTest, AggregateSeesPendingBatch) {
    Graph line(2);
    line.add_edge(0, 1);
    std::vector<std::size_t> batches;
    GossipFixture f(line, {}, {}, [&batches](ProcessId) -> std::unique_ptr<GossipHooks> {
        return std::make_unique<BatchRecordingHooks>(&batches);
    });
    // Five broadcasts posted back-to-back: the send queue accumulates them
    // before the per-peer drain runs.
    for (GossipMsgId id = 1; id <= 5; ++id) f.nodes[0]->post_broadcast(make_msg(id, 0));
    f.sim.run_until_idle();
    ASSERT_FALSE(batches.empty());
    EXPECT_EQ(batches.front(), 5u);
}

TEST(GossipNodeTest, PeerQueueCapDropsForwards) {
    Graph line(2);
    line.add_edge(0, 1);
    GossipNode::Params gp;
    gp.peer_queue_cap = 3;
    GossipFixture f(line, gp);
    for (GossipMsgId id = 1; id <= 10; ++id) f.nodes[0]->post_broadcast(make_msg(id, 0));
    f.sim.run_until_idle();
    EXPECT_GT(f.nodes[0]->counters().send_queue_drops, 0u);
    EXPECT_LT(f.delivered[1].size(), 10u);
}

TEST(GossipNodeTest, CountersAddUp) {
    const Graph overlay = make_connected_overlay(13, 3);
    GossipFixture f(overlay);
    for (GossipMsgId id = 1; id <= 20; ++id) {
        f.nodes[static_cast<std::size_t>(id % 13)]->post_broadcast(
            make_msg(id, static_cast<ProcessId>(id % 13)));
    }
    f.sim.run_until_idle();
    for (const auto& node : f.nodes) {
        const auto& c = node->counters();
        // Every non-duplicate received message plus every local broadcast is
        // delivered exactly once.
        EXPECT_EQ(c.delivered, c.broadcasts + c.messages_received - c.duplicates);
    }
}

TEST(GossipNodeTest, PullDisseminates) {
    const Graph overlay = make_connected_overlay(8, 9);
    GossipNode::Params gp;
    gp.strategy = GossipStrategy::Pull;
    gp.pull_interval = SimTime::millis(20);
    GossipFixture f(overlay, gp);
    f.nodes[0]->post_broadcast(make_msg(77, 0));
    f.sim.run_until(SimTime::seconds(8));
    int reached = 0;
    for (int v = 0; v < 8; ++v) reached += f.delivered[static_cast<std::size_t>(v)].count(77);
    EXPECT_EQ(reached, 8);
    std::uint64_t rounds = 0;
    for (const auto& node : f.nodes) rounds += node->counters().pull_rounds;
    EXPECT_GT(rounds, 0u);
}

TEST(GossipNodeTest, PushPullRecoversWhatPushLost) {
    // Under heavy receive-side loss, push alone misses deliveries; the
    // anti-entropy rounds of push-pull repair them.
    const Graph overlay = make_connected_overlay(12, 4);
    auto run = [&](GossipStrategy strategy) {
        GossipNode::Params gp;
        gp.strategy = strategy;
        gp.pull_interval = SimTime::millis(25);
        Network::Params np;
        GossipFixture f(overlay, gp, np);
        f.net.set_uniform_loss(0.5);
        for (GossipMsgId id = 1; id <= 30; ++id) f.nodes[0]->post_broadcast(make_msg(id, 0));
        f.sim.run_until(SimTime::seconds(10));
        std::size_t total = 0;
        for (const auto& d : f.delivered) total += d.size();
        return total;
    };
    const auto push_only = run(GossipStrategy::Push);
    const auto push_pull = run(GossipStrategy::PushPull);
    EXPECT_GT(push_pull, push_only);
    EXPECT_EQ(push_pull, 12u * 30u);  // anti-entropy converges to everyone
}

}  // namespace
}  // namespace gossipc
