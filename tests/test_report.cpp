// Unit tests for the JSON/CSV result serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"

namespace gossipc {
namespace {

std::pair<ExperimentConfig, ExperimentResult> small_run() {
    ExperimentConfig cfg;
    cfg.setup = Setup::SemanticGossip;
    cfg.n = 7;
    cfg.total_rate = 26.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(1.5);
    return {cfg, run_experiment(cfg)};
}

TEST(ReportTest, JsonContainsKeyFields) {
    const auto [cfg, result] = small_run();
    const std::string json = to_json(cfg, result);
    for (const char* needle :
         {"\"setup\": \"SemanticGossip\"", "\"n\": 7", "\"throughput\":", "\"latency_ms\":",
          "\"net_arrivals\":", "\"filtered_phase2b\":", "\"median_rtt_ms\":"}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
    }
    // Balanced braces (cheap structural sanity).
    int depth = 0;
    for (const char c : json) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ReportTest, CsvRowMatchesHeaderArity) {
    const auto [cfg, result] = small_run();
    const std::string header = csv_header();
    const std::string row = to_csv_row(cfg, result);
    const auto count_fields = [](const std::string& s) {
        std::size_t n = 1;
        for (const char c : s) n += c == ',' ? 1 : 0;
        return n;
    };
    EXPECT_EQ(count_fields(header), count_fields(row));
    EXPECT_NE(row.find("SemanticGossip"), std::string::npos);
}

TEST(ReportTest, CsvDeterministicForSameRun) {
    ExperimentConfig cfg;
    cfg.setup = Setup::Gossip;
    cfg.n = 7;
    cfg.total_rate = 26.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(1);
    const auto a = to_csv_row(cfg, run_experiment(cfg));
    const auto b = to_csv_row(cfg, run_experiment(cfg));
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gossipc
