// Multi-group chaos suite (DESIGN.md §15): N consensus groups sharing one
// gossip substrate must each preserve agreement, integrity, and gap-free
// delivery while a seeded fault schedule crashes processes, partitions
// minorities, degrades links, and churns the shared overlay — and a fault
// that silences one group's coordinator must stay confined to that group.
// Every run is replayable from (chaos_seed, profile), as in the single-group
// chaos suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/semantic_gossip.hpp"
#include "fault/fault_schedule.hpp"
#include "group/router.hpp"

namespace gossipc {
namespace {

constexpr int kGroups = 4;

ChaosProfile profile_by_name(const std::string& name) {
    if (name == "light") return ChaosProfile::light();
    if (name == "heavy") return ChaosProfile::heavy();
    return ChaosProfile::moderate();
}

ExperimentConfig group_chaos_config(Setup setup, const std::string& profile,
                                    std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = 9;
    cfg.groups = kGroups;
    // Per-group load is total_rate / groups; keep every group busy enough
    // that a stalled one is unmistakable in the decided counts.
    cfg.total_rate = 104.0;
    cfg.warmup = SimTime::seconds(0.25);
    // The chaos window is [250ms, 2.25s]; measure covers it entirely and the
    // drain leaves ample fault-free time for repair to close every gap.
    cfg.measure = SimTime::seconds(2);
    cfg.drain = SimTime::seconds(3);
    if (!profile.empty()) {
        cfg.chaos = profile_by_name(profile);
        cfg.chaos_seed = seed;
    }
    cfg.seed = seed;
    return cfg;
}

/// Per-group safety: every group individually satisfies P-AGR-1, integrity,
/// and gap-free delivery across all processes, and no client value was
/// decided by more than one group (the router is a partition of the key
/// space). Returns the per-group distinct decided counts.
std::vector<std::uint64_t> assert_per_group_safety(Deployment& d,
                                                   const ExperimentConfig& cfg) {
    std::vector<std::uint64_t> decided(static_cast<std::size_t>(cfg.groups), 0);
    std::set<ValueId> across_groups;
    for (GroupId g = 0; g < cfg.groups; ++g) {
        std::map<InstanceId, ValueId> reference;
        for (ProcessId id = 0; id < cfg.n; ++id) {
            auto& learner = d.process(id, g).learner();
            for (InstanceId i = 1; i < learner.frontier(); ++i) {
                const auto v = learner.decided_value(i);
                if (!v.has_value()) {
                    ADD_FAILURE() << "gap at process " << id << " group " << g
                                  << " instance " << i;
                    continue;
                }
                EXPECT_GE(v->id.client, 0);
                EXPECT_LT(v->id.client, cfg.num_clients);
                const auto [it, inserted] = reference.emplace(i, v->id);
                EXPECT_EQ(it->second, v->id)
                    << "divergent decision at group " << g << " instance " << i
                    << " process " << id;
                if (inserted) ++decided[static_cast<std::size_t>(g)];
            }
            EXPECT_EQ(learner.delivered_count(),
                      static_cast<std::uint64_t>(learner.frontier() - 1))
                << "process " << id << " group " << g;
        }
        std::set<ValueId> in_group;
        for (const auto& [inst, vid] : reference) {
            EXPECT_TRUE(in_group.insert(vid).second)
                << "value decided twice within group " << g;
            EXPECT_TRUE(across_groups.insert(vid).second)
                << "value decided by two groups (router not a partition)";
            EXPECT_EQ(group::group_for_value(vid, cfg.groups), g)
                << "group " << g << " decided a value the router maps elsewhere";
        }
    }
    return decided;
}

struct GroupChaosEnv {
    Setup setup;
    const char* profile;
    std::uint64_t seed;
};

class GroupChaosSweep : public ::testing::TestWithParam<GroupChaosEnv> {};

TEST_P(GroupChaosSweep, PerGroupSafetyHoldsUnderSharedSubstrateChaos) {
    const GroupChaosEnv env = GetParam();
    const ExperimentConfig cfg = group_chaos_config(env.setup, env.profile, env.seed);
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_GT(result.faults_injected, 0u)
        << "profile=" << env.profile << " chaos_seed=" << env.seed;

    const auto decided = assert_per_group_safety(d, cfg);
    ASSERT_EQ(result.group_decided.size(), static_cast<std::size_t>(kGroups));
    for (GroupId g = 0; g < cfg.groups; ++g) {
        EXPECT_GT(decided[static_cast<std::size_t>(g)], 0u)
            << "group " << g << " decided nothing (profile=" << env.profile
            << " chaos_seed=" << env.seed << ")";
    }

    // Recovery: with every fault healed before the drain, every process
    // catches up to each group's best frontier (modulo a short repair tail).
    for (GroupId g = 0; g < cfg.groups; ++g) {
        InstanceId best = 1;
        for (ProcessId id = 0; id < cfg.n; ++id) {
            best = std::max(best, d.process(id, g).learner().frontier());
        }
        ASSERT_GT(best, 1) << "group " << g;
        for (ProcessId id = 0; id < cfg.n; ++id) {
            const InstanceId lag = best - d.process(id, g).learner().frontier();
            EXPECT_LE(lag, 32)
                << "process " << id << " group " << g << " did not catch up"
                << " (profile=" << env.profile << " chaos_seed=" << env.seed << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, GroupChaosSweep,
    ::testing::Values(GroupChaosEnv{Setup::Gossip, "light", 11},
                      GroupChaosEnv{Setup::Gossip, "moderate", 23},
                      GroupChaosEnv{Setup::SemanticGossip, "light", 23},
                      GroupChaosEnv{Setup::SemanticGossip, "moderate", 11},
                      GroupChaosEnv{Setup::SemanticGossip, "moderate", 37}),
    [](const ::testing::TestParamInfo<GroupChaosEnv>& info) {
        const GroupChaosEnv& e = info.param;
        std::string name = setup_name(e.setup);
        name += "_";
        name += e.profile;
        name += "_s" + std::to_string(e.seed);
        return name;
    });

// Cross-group aggregation under chaos: the X1 packing rule (DESIGN.md §15)
// must stay provably lossless while links drop, duplicate, and reorder its
// envelopes. The S-AGG-1 roundtrip monitor runs inline on every batch the
// aggregation hook emits (GC_INVARIANT aborts the run on a violation), so a
// green sweep with cross_group_batches > 0 is the losslessness evidence.
TEST(GroupChaosAggregation, CrossGroupPackingLosslessUnderChaos) {
    ExperimentConfig cfg = group_chaos_config(Setup::SemanticGossip, "moderate", 23);
    cfg.total_rate = 208.0;  // enough concurrency that cross-group packs form
    ASSERT_TRUE(cfg.semantic.aggregation);
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_GT(result.faults_injected, 0u);
    EXPECT_GT(result.semantic.cross_group_batches, 0u)
        << "chaos run never packed Phase 2b/Decision traffic across groups";
    EXPECT_GT(result.semantic.cross_group_merged, 0u);
    assert_per_group_safety(d, cfg);
}

// Fault confinement, stall form: with failover off, permanently crashing one
// group's placement coordinator stalls exactly that group — every other
// group keeps deciding on the shared substrate for the rest of the run. The
// run is driven manually so per-group frontiers can be snapshotted shortly
// after the crash and compared against the end of the run.
TEST(GroupChaosConfinement, CoordinatorCrashStallsOnlyItsGroup) {
    ExperimentConfig cfg = group_chaos_config(Setup::Gossip, "moderate", 11);
    const GroupId victim = 1;
    const ProcessId victim_node = group::placement_coordinator(victim, cfg.n);
    cfg.faults.crash(SimTime::millis(750), victim_node);  // no restart: down for good
    Deployment d(cfg);

    // The stall argument needs the victim to actually stay down: the merged
    // moderate schedule must not revive it. Deterministic in
    // (profile, chaos_seed) — if a schedule change trips this, pick a seed
    // whose crash slots avoid the victim node.
    for (const FaultEvent& e : d.fault_injector()->schedule().events()) {
        if (const auto* r = std::get_if<RestartFault>(&e.action)) {
            ASSERT_NE(r->process, victim_node)
                << "chaos schedule revives the victim node at " << e.at.as_nanos();
        }
    }

    d.start_processes();
    d.workload().start();
    // 250ms past the crash: in-flight instances the dead coordinator already
    // proposed have settled, nothing new can start in the victim group.
    d.simulator().run_until(SimTime::seconds(1));
    const auto frontier_of = [&](GroupId g) {
        InstanceId best = 1;
        for (ProcessId id = 0; id < cfg.n; ++id) {
            if (id == victim_node) continue;  // crashed: its state is frozen
            best = std::max(best, d.process(id, g).learner().frontier());
        }
        return best;
    };
    std::vector<InstanceId> at_crash;
    for (GroupId g = 0; g < cfg.groups; ++g) at_crash.push_back(frontier_of(g));
    ASSERT_GT(at_crash[static_cast<std::size_t>(victim)], 1)
        << "victim group never decided before the crash";

    d.simulator().run_until(cfg.warmup + cfg.measure + cfg.drain);
    for (GroupId g = 0; g < cfg.groups; ++g) {
        if (g == victim) {
            EXPECT_EQ(frontier_of(g), at_crash[static_cast<std::size_t>(g)])
                << "stalled group advanced without its coordinator";
        } else {
            EXPECT_GT(frontier_of(g), at_crash[static_cast<std::size_t>(g)])
                << "group " << g << " stopped deciding after group " << victim
                << "'s coordinator crashed";
        }
    }
    assert_per_group_safety(d, cfg);
}

// Fault confinement, failover form (the simulator twin of the gossipd
// SIGKILL acceptance run): with failover on, the crashed coordinator's group
// elects a successor and resumes, and no other group's rank view changes.
TEST(GroupChaosConfinement, FailoverAfterCoordinatorCrashIsConfinedToItsGroup) {
    ExperimentConfig cfg = group_chaos_config(Setup::Gossip, "", 11);
    cfg.failover = true;
    const GroupId victim = 1;
    const ProcessId victim_node = group::placement_coordinator(victim, cfg.n);
    cfg.faults.crash(SimTime::millis(750), victim_node);
    Deployment d(cfg);
    const auto result = d.run();

    const auto decided = assert_per_group_safety(d, cfg);

    // Exactly the victim group took over, somewhere; every other group's
    // processes never assumed coordination.
    std::uint64_t victim_takeovers = 0;
    for (ProcessId id = 0; id < cfg.n; ++id) {
        for (GroupId g = 0; g < cfg.groups; ++g) {
            const std::uint64_t t = d.process(id, g).counters().takeovers;
            if (g == victim) {
                victim_takeovers += t;
            } else {
                EXPECT_EQ(t, 0u) << "takeover outside the crashed group: process "
                                 << id << " group " << g;
            }
        }
    }
    EXPECT_GE(victim_takeovers, 1u);
    EXPECT_EQ(result.failover.takeovers, victim_takeovers);

    // The failed-over group kept deciding: its count is comparable to its
    // peers', not a pre-crash stub.
    std::uint64_t min_other = ~0ull;
    for (GroupId g = 0; g < cfg.groups; ++g) {
        if (g != victim) {
            min_other = std::min(min_other, decided[static_cast<std::size_t>(g)]);
        }
    }
    EXPECT_GT(2 * decided[static_cast<std::size_t>(victim)], min_other)
        << "victim group stalled despite failover";

    // Sharded failover events carry their group tag for per-shard joins.
    const bool tagged = std::any_of(
        result.fault_log.begin(), result.fault_log.end(), [](const std::string& l) {
            return l.find(" g" + std::to_string(victim)) != std::string::npos;
        });
    EXPECT_TRUE(tagged) << "no group-stamped failover event in the fault log";
}

// Replay determinism at N=4 groups: two deployments built from the same
// config produce byte-identical fault logs — including the group-stamped
// failover lines the sharded listeners append.
TEST(GroupChaosReplay, FaultLogIsByteIdenticalAcrossRunsAtFourGroups) {
    ExperimentConfig cfg = group_chaos_config(Setup::Gossip, "moderate", 7);
    cfg.failover = true;
    Deployment a(cfg);
    const auto ra = a.run();
    Deployment b(cfg);
    const auto rb = b.run();
    ASSERT_FALSE(a.fault_injector()->log().empty());
    EXPECT_EQ(a.fault_injector()->rendered_log(), b.fault_injector()->rendered_log());
    ASSERT_EQ(ra.fault_log, rb.fault_log);
}

}  // namespace
}  // namespace gossipc
