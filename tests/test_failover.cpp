// Coordinator-failover liveness suite (DESIGN.md §8): the system must keep
// ordering values from live clients through permanent coordinator crashes in
// every setup, recover cleanly from detector false positives (partitioned
// coordinator), and stay byte-replayable. Registered under the
// chaos.failover. prefix; CI runs it sanitized and under TSan.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/semantic_gossip.hpp"

namespace gossipc {
namespace {

ExperimentConfig failover_config(Setup setup) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = 13;
    cfg.total_rate = 52.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(2);
    cfg.drain = SimTime::seconds(5);
    cfg.failover = true;
    return cfg;
}

/// P-AGR-1 across every learner: any two processes that decided an instance
/// decided the same value, and no value occupies two instances.
void assert_agreement(Deployment& d, int n, const std::string& label) {
    std::map<InstanceId, ValueId> reference;
    for (ProcessId id = 0; id < n; ++id) {
        auto& learner = d.process(id).learner();
        for (InstanceId i = 1; i < learner.frontier(); ++i) {
            const auto v = learner.decided_value(i);
            ASSERT_TRUE(v.has_value()) << label << ": gap at p" << id << " instance " << i;
            const auto [it, inserted] = reference.emplace(i, v->id);
            ASSERT_EQ(it->second, v->id)
                << label << ": divergent decision at instance " << i << " process " << id;
        }
    }
    std::set<ValueId> values;
    for (const auto& [inst, vid] : reference) {
        ASSERT_TRUE(values.insert(vid).second)
            << label << ": value decided in two instances";
    }
}

class FailoverSweep : public ::testing::TestWithParam<Setup> {};

// The acceptance scenario: the coordinator dies permanently at t=0.5s and
// never restarts. With failover, every value submitted by a client that is
// not attached to the dead process must still be ordered.
TEST_P(FailoverSweep, PermanentCoordinatorCrashLeavesNoLiveClientUnordered) {
    ExperimentConfig cfg = failover_config(GetParam());
    cfg.faults.crash(SimTime::seconds(0.5), 0);  // no matching restart
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_GE(result.failover.suspicions, 1u);
    EXPECT_GE(result.failover.takeovers, 1u);
    // Zero permanently-unordered values from live clients. The client
    // attached to the dead coordinator goes down with its host (expected).
    for (const auto& client : d.workload().clients()) {
        if (client->attached_process() == 0) continue;
        EXPECT_EQ(client->not_ordered_in_window(), 0u)
            << setup_name(cfg.setup) << ": client " << client->id() << " on p"
            << client->attached_process();
    }
    // The takeover shows up in the merged fault log alongside the crash.
    bool saw_takeover = false;
    for (const std::string& line : result.fault_log) {
        if (line.find("takeover") != std::string::npos) saw_takeover = true;
    }
    EXPECT_TRUE(saw_takeover);
    assert_agreement(d, cfg.n, setup_name(cfg.setup));
}

INSTANTIATE_TEST_SUITE_P(Setups, FailoverSweep,
                         ::testing::Values(Setup::Baseline, Setup::Gossip,
                                           Setup::SemanticGossip),
                         [](const ::testing::TestParamInfo<Setup>& info) {
                             return std::string(setup_name(info.param));
                         });

struct HeavyEnv {
    Setup setup;
    std::uint64_t seed;
};

class HeavyFailoverSweep : public ::testing::TestWithParam<HeavyEnv> {};

// heavy-failover chaos: the permanent coordinator crash lands inside a full
// heavy schedule (crash/restart cycles, partitions, lossy links, churn).
// Safety must hold throughout and everyone but the dead coordinator catches
// up once the chaos window closes.
TEST_P(HeavyFailoverSweep, SafetyAndLivenessUnderHeavyFailoverChaos) {
    const HeavyEnv env = GetParam();
    ExperimentConfig cfg = failover_config(env.setup);
    cfg.chaos = ChaosProfile::heavy_failover();
    cfg.chaos_seed = env.seed;
    cfg.seed = env.seed;
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_GT(result.faults_injected, 0u)
        << "setup=" << setup_name(env.setup) << " chaos_seed=" << env.seed;
    EXPECT_GE(result.failover.suspicions, 1u);
    EXPECT_GE(result.failover.takeovers, 1u);
    assert_agreement(d, cfg.n, std::string(setup_name(env.setup)) + " s" +
                                   std::to_string(env.seed));

    // Liveness: decisions kept flowing after the permanent crash, and every
    // live process converges to the leading frontier (modulo a repair tail).
    InstanceId max_frontier = 1;
    for (ProcessId id = 1; id < cfg.n; ++id) {
        max_frontier = std::max(max_frontier, d.process(id).learner().frontier());
    }
    ASSERT_GT(max_frontier, 30) << "setup=" << setup_name(env.setup)
                                << " chaos_seed=" << env.seed;
    for (ProcessId id = 1; id < cfg.n; ++id) {
        const InstanceId lag = max_frontier - d.process(id).learner().frontier();
        EXPECT_LE(lag, 32) << "process " << id << " did not catch up (setup="
                           << setup_name(env.setup) << " chaos_seed=" << env.seed << ")";
    }
}

std::vector<HeavyEnv> heavy_envs() {
    std::vector<HeavyEnv> envs;
    for (const Setup setup : {Setup::Baseline, Setup::Gossip, Setup::SemanticGossip}) {
        for (const std::uint64_t seed : {11ull, 23ull}) {
            envs.push_back(HeavyEnv{setup, seed});
        }
    }
    return envs;
}

INSTANTIATE_TEST_SUITE_P(Profiles, HeavyFailoverSweep, ::testing::ValuesIn(heavy_envs()),
                         [](const ::testing::TestParamInfo<HeavyEnv>& info) {
                             return std::string(setup_name(info.param.setup)) + "_s" +
                                    std::to_string(info.param.seed);
                         });

// Detector false positive: the coordinator is partitioned away long enough
// to be suspected, a successor takes over, then the partition heals. The old
// coordinator must step down on observing the higher round, its orphaned
// values must be re-routed, and nothing submitted by any client may be lost.
TEST(FailoverFalsePositive, PartitionedCoordinatorStepsDownAfterHeal) {
    ExperimentConfig cfg = failover_config(Setup::Gossip);
    cfg.drain = SimTime::seconds(6);
    cfg.faults.partition(SimTime::seconds(0.5), {0});
    cfg.faults.heal(SimTime::seconds(1.4));
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_GE(result.failover.suspicions, 1u);
    EXPECT_GE(result.failover.takeovers, 1u);
    EXPECT_GE(result.failover.step_downs, 1u);
    EXPECT_GE(result.failover.restores, 1u);
    // Nobody died: every single client's window submissions were ordered,
    // including the old coordinator's own orphaned proposals.
    for (const auto& client : d.workload().clients()) {
        EXPECT_EQ(client->not_ordered_in_window(), 0u)
            << "client " << client->id() << " on p" << client->attached_process();
    }
    // The dust settled on exactly one active coordinator.
    int active = 0;
    for (ProcessId id = 0; id < cfg.n; ++id) {
        if (d.process(id).is_coordinator()) ++active;
    }
    EXPECT_EQ(active, 1);
    assert_agreement(d, cfg.n, "false-positive");
}

// Batching regression (DESIGN.md §14): a coordinator that loses its seat
// with a partially filled batch — unflushed values parked behind the
// batch_delay timer plus in-flight composites that never reached a quorum —
// must hand every one of those client values through the orphaned-value
// re-queue path. A long batch_delay makes the window essentially permanent:
// if orphan hand-off skipped the pending partial batch, those values would
// only survive via origin retransmission races, and with the old coordinator
// stepped down they would show up as not_ordered here.
TEST(FailoverBatching, PartialBatchIsRequeuedOnStepDown) {
    ExperimentConfig cfg = failover_config(Setup::Gossip);
    // batch_size never fills at 52 ops/s, so every flush is timer-driven and
    // at any instant ~10 values sit parked in a partial batch. During the
    // partition the timer keeps flushing the old coordinator's local-client
    // values into composites nobody can hear — in-flight orphans — while the
    // latest window's values are still parked unflushed.
    cfg.batch_size = 64;
    cfg.batch_delay = SimTime::millis(200);
    cfg.drain = SimTime::seconds(6);
    cfg.faults.partition(SimTime::seconds(0.5), {0});
    cfg.faults.heal(SimTime::seconds(1.4));
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_GE(result.failover.takeovers, 1u);
    EXPECT_GE(result.failover.step_downs, 1u);
    // Every client value was ordered — including both kinds of strandees on
    // the demoted coordinator (unheard in-flight composites, unflushed
    // pending values), which only the orphan re-queue can save.
    for (const auto& client : d.workload().clients()) {
        EXPECT_EQ(client->not_ordered_in_window(), 0u)
            << "client " << client->id() << " on p" << client->attached_process();
    }
    assert_agreement(d, cfg.n, "partial-batch-step-down");
}

// The same window closed by a crash instead of a partition: the crash kills
// the one-shot flush timer, so the parked partial batch can only survive
// through the restart -> observe-higher-round -> step_down orphan hand-off.
// If step_down dropped pending_ values, the old coordinator's client would
// end the run with permanently unordered submissions.
TEST(FailoverBatching, CrashWithPartialBatchRequeuesThroughRestart) {
    ExperimentConfig cfg = failover_config(Setup::Gossip);
    cfg.batch_size = 64;
    cfg.batch_delay = SimTime::millis(200);
    cfg.drain = SimTime::seconds(6);
    cfg.faults.crash(SimTime::seconds(0.5), 0);    // timer dies, batch parked
    cfg.faults.restart(SimTime::seconds(1.5), 0);  // successor rules by now
    Deployment d(cfg);
    const auto result = d.run();

    EXPECT_GE(result.failover.takeovers, 1u);
    EXPECT_GE(result.failover.step_downs, 1u);  // the restartee demotes itself
    for (const auto& client : d.workload().clients()) {
        if (client->attached_process() == 0) {
            // The open-loop client keeps firing into its dead host during the
            // 1s crash window: those submissions (1s at 52/13 = 4 ops/s) are
            // lost with the host, by design. Anything above that bound would
            // mean pre-crash values parked in the partial batch were dropped
            // instead of re-queued at step-down.
            EXPECT_LE(client->not_ordered_in_window(), 4u)
                << "client " << client->id() << " lost parked pre-crash values";
            continue;
        }
        EXPECT_EQ(client->not_ordered_in_window(), 0u)
            << "client " << client->id() << " on p" << client->attached_process();
    }
    assert_agreement(d, cfg.n, "partial-batch-crash-restart");
}

// A fault-free failover run must be indistinguishable from a non-failover
// run in the event log: the detector never fires, so no suspicion, takeover,
// or step-down events exist and the (empty) fault logs match byte-for-byte.
TEST(FailoverDeterminism, QuietDetectorLeavesEventLogIdenticalToNonFailover) {
    ExperimentConfig cfg = failover_config(Setup::SemanticGossip);
    cfg.drain = SimTime::seconds(2);
    Deployment with_failover(cfg);
    const auto a = with_failover.run();
    cfg.failover = false;
    Deployment without_failover(cfg);
    const auto b = without_failover.run();

    EXPECT_EQ(a.fault_log, b.fault_log);
    EXPECT_TRUE(a.fault_log.empty());
    EXPECT_EQ(a.failover.suspicions, 0u);
    EXPECT_EQ(a.failover.takeovers, 0u);
    EXPECT_EQ(a.failover.step_downs, 0u);
    // The detector ran (heartbeats flowed during idle spells) but stayed
    // quiet; the non-failover run never even constructed it.
    EXPECT_GT(a.failover.heartbeats_sent + a.failover.heartbeats_suppressed, 0u);
    EXPECT_EQ(b.failover.heartbeats_sent, 0u);
}

// Faults that resolve below the suspicion timeout also keep the logs
// identical: a short partition of a non-coordinator is injected, but the
// detector never fires on it, so both configurations log exactly the
// injected events.
TEST(FailoverDeterminism, SubTimeoutFaultsLogIdenticallyWithAndWithoutFailover) {
    ExperimentConfig cfg = failover_config(Setup::Gossip);
    cfg.drain = SimTime::seconds(2);
    cfg.faults.partition(SimTime::seconds(0.6), {5});
    cfg.faults.heal(SimTime::seconds(0.9));  // healed well below suspect_after
    Deployment with_failover(cfg);
    const auto a = with_failover.run();
    cfg.failover = false;
    Deployment without_failover(cfg);
    const auto b = without_failover.run();

    ASSERT_FALSE(a.fault_log.empty());
    EXPECT_EQ(a.fault_log, b.fault_log);
    EXPECT_EQ(a.failover.suspicions, 0u);
    EXPECT_EQ(a.failover.takeovers, 0u);
}

// Replay determinism with failover active: two deployments built from the
// same config produce byte-identical merged fault logs (injected faults and
// failover events interleaved) and identical failover counters.
TEST(FailoverDeterminism, FailoverRunReplaysByteIdentically) {
    ExperimentConfig cfg = failover_config(Setup::Gossip);
    cfg.faults.crash(SimTime::seconds(0.5), 0);
    Deployment first(cfg);
    const auto a = first.run();
    Deployment second(cfg);
    const auto b = second.run();

    ASSERT_FALSE(a.fault_log.empty());
    EXPECT_EQ(a.fault_log, b.fault_log);
    EXPECT_EQ(a.failover.suspicions, b.failover.suspicions);
    EXPECT_EQ(a.failover.restores, b.failover.restores);
    EXPECT_EQ(a.failover.takeovers, b.failover.takeovers);
    EXPECT_EQ(a.failover.step_downs, b.failover.step_downs);
    EXPECT_EQ(a.failover.heartbeats_sent, b.failover.heartbeats_sent);
}

}  // namespace
}  // namespace gossipc
