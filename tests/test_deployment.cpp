// Tests for the Deployment facade: component accessors, mid-run statistics,
// manual driving without the bundled workload, and configuration plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/semantic_gossip.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

ExperimentConfig tiny(Setup setup) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = 7;
    cfg.total_rate = 26.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(1.5);
    return cfg;
}

TEST(DeploymentTest, AccessorsMatchSetup) {
    Deployment baseline(tiny(Setup::Baseline));
    EXPECT_EQ(baseline.overlay(), nullptr);
    EXPECT_EQ(baseline.gossip_node(0), nullptr);
    EXPECT_EQ(baseline.semantics(0), nullptr);

    Deployment gossip(tiny(Setup::Gossip));
    ASSERT_NE(gossip.overlay(), nullptr);
    ASSERT_NE(gossip.gossip_node(3), nullptr);
    EXPECT_EQ(gossip.semantics(3), nullptr);  // classic hooks

    Deployment semantic(tiny(Setup::SemanticGossip));
    ASSERT_NE(semantic.semantics(3), nullptr);
    EXPECT_EQ(semantic.semantics(3)->options().filtering, true);
}

TEST(DeploymentTest, ManualDrivingWithoutWorkload) {
    Deployment d(tiny(Setup::SemanticGossip));
    d.start_processes();
    // Submit values by hand through arbitrary processes.
    for (int s = 1; s <= 5; ++s) {
        d.process(s % 7).post_submit(testutil::make_value(99, s));
    }
    d.simulator().run_until(SimTime::seconds(3));
    EXPECT_EQ(d.process(2).learner().delivered_count(), 5u);
    const auto stats = d.message_stats();
    EXPECT_GT(stats.net_arrivals, 0u);
    EXPECT_GT(stats.gossip_delivered, 0u);
}

TEST(DeploymentTest, MidRunStatsAreMonotone) {
    Deployment d(tiny(Setup::Gossip));
    d.start_processes();
    d.workload().start();
    d.simulator().run_until(SimTime::seconds(0.5));
    const auto early = d.message_stats();
    d.simulator().run_until(SimTime::seconds(2));
    const auto late = d.message_stats();
    EXPECT_GE(late.net_arrivals, early.net_arrivals);
    EXPECT_GE(late.gossip_delivered, early.gossip_delivered);
    EXPECT_GT(late.net_arrivals, 0u);
}

TEST(DeploymentTest, GossipParamsPlumbedThrough) {
    auto cfg = tiny(Setup::Gossip);
    cfg.gossip_params.peer_queue_cap = 3;  // absurdly small: forces drops
    cfg.total_rate = 260.0;
    Deployment d(cfg);
    const auto result = d.run();
    EXPECT_GT(result.messages.gossip_send_queue_drops, 0u);
}

TEST(DeploymentTest, NodeParamsPlumbedThrough) {
    auto cfg = tiny(Setup::Baseline);
    cfg.node_params.recv_cost = SimTime::millis(20);  // pathologically slow CPU
    const auto slow = run_experiment(cfg);
    const auto fast = run_experiment(tiny(Setup::Baseline));
    EXPECT_GT(slow.workload.latencies.mean(), fast.workload.latencies.mean());
}

TEST(DeploymentTest, StrategyPlumbedThrough) {
    auto cfg = tiny(Setup::Gossip);
    cfg.strategy = GossipStrategy::PushPull;
    Deployment d(cfg);
    const auto result = d.run();
    EXPECT_EQ(result.workload.not_ordered, 0u);
    std::uint64_t pull_rounds = 0;
    for (ProcessId id = 0; id < cfg.n; ++id) {
        pull_rounds += d.gossip_node(id)->counters().pull_rounds;
    }
    EXPECT_GT(pull_rounds, 0u);
}

// Golden snapshot of the unified registry's name set. A maximal run (semantic
// setup with failover and tracing on) registers every metric the system can
// emit; a renamed, dropped, or silently added metric shows up as a diff here.
// The gclint metrics-hygiene rule cross-checks these names at lint time.
TEST(DeploymentTest, MetricsRegistryNamesAreStable) {
    auto cfg = tiny(Setup::SemanticGossip);
    cfg.failover = true;
    cfg.trace = true;
    const auto result = run_experiment(cfg);

    std::vector<std::string> names;
    names.reserve(result.metrics.size());
    for (const auto& sample : result.metrics) names.push_back(sample.name);
    std::sort(names.begin(), names.end());

    const std::vector<std::string> golden = {
        "failover.heartbeats_sent", "failover.heartbeats_suppressed",
        "failover.restores", "failover.step_downs", "failover.suspicions",
        "failover.takeovers", "fault.injected", "gossip.aggregated_away",
        "gossip.broadcasts", "gossip.delivered", "gossip.duplicates",
        "gossip.envelopes_received", "gossip.envelopes_sent",
        "gossip.fanout_limited", "gossip.fanout_widened", "gossip.filtered",
        "gossip.messages_received", "gossip.pipelined_forwards",
        "gossip.pull_rounds", "gossip.pull_served",
        "gossip.send_queue_drops", "group.heartbeats_fanned", "group.routed",
        "group.unroutable", "net.arrivals", "net.bytes_sent",
        "net.coordinator_arrivals", "net.loss_drops", "net.queue_drops",
        "net.sent", "paxos.batch_timer_flushes", "paxos.batched_values",
        "paxos.batches_proposed", "paxos.decisions_at_coordinator",
        "paxos.g0.decided", "paxos.g0.submitted", "paxos.g0.takeovers",
        "paxos.groups", "paxos.groups.decided_min",
        "paxos.groups.decided_total",
        "paxos.handled.client_value", "paxos.handled.decision",
        "paxos.handled.group_batch",
        "paxos.handled.heartbeat", "paxos.handled.learn_request",
        "paxos.handled.phase1a", "paxos.handled.phase1b",
        "paxos.handled.phase2a", "paxos.handled.phase2b",
        "paxos.handled.phase2b_aggregate", "paxos.learn_requests_answered",
        "paxos.learn_requests_sent", "paxos.messages_handled",
        "paxos.value_retransmissions", "paxos.values_shed",
        "paxos.values_submitted",
        "semantic.aggregates_built", "semantic.cross_group_batches",
        "semantic.cross_group_merged", "semantic.disaggregations",
        "semantic.filtered_phase2b", "semantic.messages_merged",
        "sim.callbacks", "sim.deliveries", "sim.events", "sim.faults",
        "sim.queue_depth", "sim.queue_depth_max", "trace.evicted",
        "trace.recorded", "workload.completed", "workload.latency_ms",
        "workload.not_ordered", "workload.offered_load", "workload.submitted",
        "workload.submitted_in_window", "workload.throughput",
    };
    EXPECT_EQ(names, golden);
}

TEST(DeploymentTest, ValueSizePropagatesToWire) {
    auto small_cfg = tiny(Setup::Gossip);
    small_cfg.value_size = 64;
    auto large_cfg = tiny(Setup::Gossip);
    large_cfg.value_size = 4096;
    const auto small = run_experiment(small_cfg);
    const auto large = run_experiment(large_cfg);
    EXPECT_GT(large.messages.bytes_sent, small.messages.bytes_sent);
}

}  // namespace
}  // namespace gossipc
