// Tests for the Deployment facade: component accessors, mid-run statistics,
// manual driving without the bundled workload, and configuration plumbing.
#include <gtest/gtest.h>

#include "core/semantic_gossip.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

ExperimentConfig tiny(Setup setup) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = 7;
    cfg.total_rate = 26.0;
    cfg.warmup = SimTime::seconds(0.25);
    cfg.measure = SimTime::seconds(1);
    cfg.drain = SimTime::seconds(1.5);
    return cfg;
}

TEST(DeploymentTest, AccessorsMatchSetup) {
    Deployment baseline(tiny(Setup::Baseline));
    EXPECT_EQ(baseline.overlay(), nullptr);
    EXPECT_EQ(baseline.gossip_node(0), nullptr);
    EXPECT_EQ(baseline.semantics(0), nullptr);

    Deployment gossip(tiny(Setup::Gossip));
    ASSERT_NE(gossip.overlay(), nullptr);
    ASSERT_NE(gossip.gossip_node(3), nullptr);
    EXPECT_EQ(gossip.semantics(3), nullptr);  // classic hooks

    Deployment semantic(tiny(Setup::SemanticGossip));
    ASSERT_NE(semantic.semantics(3), nullptr);
    EXPECT_EQ(semantic.semantics(3)->options().filtering, true);
}

TEST(DeploymentTest, ManualDrivingWithoutWorkload) {
    Deployment d(tiny(Setup::SemanticGossip));
    d.start_processes();
    // Submit values by hand through arbitrary processes.
    for (int s = 1; s <= 5; ++s) {
        d.process(s % 7).post_submit(testutil::make_value(99, s));
    }
    d.simulator().run_until(SimTime::seconds(3));
    EXPECT_EQ(d.process(2).learner().delivered_count(), 5u);
    const auto stats = d.message_stats();
    EXPECT_GT(stats.net_arrivals, 0u);
    EXPECT_GT(stats.gossip_delivered, 0u);
}

TEST(DeploymentTest, MidRunStatsAreMonotone) {
    Deployment d(tiny(Setup::Gossip));
    d.start_processes();
    d.workload().start();
    d.simulator().run_until(SimTime::seconds(0.5));
    const auto early = d.message_stats();
    d.simulator().run_until(SimTime::seconds(2));
    const auto late = d.message_stats();
    EXPECT_GE(late.net_arrivals, early.net_arrivals);
    EXPECT_GE(late.gossip_delivered, early.gossip_delivered);
    EXPECT_GT(late.net_arrivals, 0u);
}

TEST(DeploymentTest, GossipParamsPlumbedThrough) {
    auto cfg = tiny(Setup::Gossip);
    cfg.gossip_params.peer_queue_cap = 3;  // absurdly small: forces drops
    cfg.total_rate = 260.0;
    Deployment d(cfg);
    const auto result = d.run();
    EXPECT_GT(result.messages.gossip_send_queue_drops, 0u);
}

TEST(DeploymentTest, NodeParamsPlumbedThrough) {
    auto cfg = tiny(Setup::Baseline);
    cfg.node_params.recv_cost = SimTime::millis(20);  // pathologically slow CPU
    const auto slow = run_experiment(cfg);
    const auto fast = run_experiment(tiny(Setup::Baseline));
    EXPECT_GT(slow.workload.latencies.mean(), fast.workload.latencies.mean());
}

TEST(DeploymentTest, StrategyPlumbedThrough) {
    auto cfg = tiny(Setup::Gossip);
    cfg.strategy = GossipStrategy::PushPull;
    Deployment d(cfg);
    const auto result = d.run();
    EXPECT_EQ(result.workload.not_ordered, 0u);
    std::uint64_t pull_rounds = 0;
    for (ProcessId id = 0; id < cfg.n; ++id) {
        pull_rounds += d.gossip_node(id)->counters().pull_rounds;
    }
    EXPECT_GT(pull_rounds, 0u);
}

TEST(DeploymentTest, ValueSizePropagatesToWire) {
    auto small_cfg = tiny(Setup::Gossip);
    small_cfg.value_size = 64;
    auto large_cfg = tiny(Setup::Gossip);
    large_cfg.value_size = 4096;
    const auto small = run_experiment(small_cfg);
    const auto large = run_experiment(large_cfg);
    EXPECT_GT(large.messages.bytes_sent, small.messages.bytes_sent);
}

}  // namespace
}  // namespace gossipc
